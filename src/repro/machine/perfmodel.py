"""ECM-style SpMV performance model over simulated cache events.

The paper's performance observations (Section 4.4) are the calibration
points of this model:

* peak-locality matrices reach 110-120 Gflop/s — a per-core SpMV execution
  ceiling (gather-bound SVE), not peak FLOPS;
* streaming-bound matrices track the sustained ~800 GB/s HBM2 bandwidth
  (2 flops per 12 matrix bytes = ~130 Gflop/s upper envelope, less with
  x-vector traffic);
* many matrices are limited by neither — the *latency of handling demand
  misses* dominates, which is why reducing demand misses with the sector
  cache speeds them up even as bandwidth utilisation rises.

Execution time of one SpMV iteration is modelled as::

    T = max(T_compute, T_l1l2, T_memory) + T_demand_latency

with the demand-latency term additive (it serialises against the pipelines
the other terms model).  The components come directly from the simulator's
PMU-style events, so a sector configuration that removes demand misses
shortens ``T_demand_latency`` exactly as Fig. 5 correlates.

All traffic terms are intensive (bytes *per nonzero*), so events measured
on the scaled machine with scaled matrices yield full-machine Gflop/s
projections without rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cachesim.events import CacheEvents
from ..spmv.csr import CSRMatrix
from .a64fx import A64FX


@dataclass(frozen=True)
class PerformanceEstimate:
    """Modelled runtime of one SpMV iteration and derived metrics."""

    seconds: float
    gflops: float
    components: dict[str, float] = field(default_factory=dict)
    bandwidth_gbs: float = 0.0

    @property
    def bottleneck(self) -> str:
        """Name of the dominant time component."""
        return max(self.components, key=self.components.get)


@dataclass(frozen=True)
class PerformanceModel:
    """Calibrated throughput/latency model of SpMV on the A64FX.

    ``core_spmv_flops`` is the per-core execution ceiling of the CSR kernel
    (indexed loads bound SVE throughput well below peak FMA rate);
    ``mlp`` the average number of demand misses the out-of-order engine and
    prefetch machinery overlap.
    """

    machine: A64FX
    core_spmv_flops: float = 3.5e9
    mlp: float = 6.0

    def estimate(
        self,
        matrix: CSRMatrix,
        events: CacheEvents,
        num_threads: int,
    ) -> PerformanceEstimate:
        """Runtime and Gflop/s of one SpMV iteration from simulated events."""
        return self.estimate_from_counts(matrix.nnz, events, num_threads)

    def estimate_from_counts(
        self,
        nnz: int,
        events: CacheEvents,
        num_threads: int,
    ) -> PerformanceEstimate:
        """Like :meth:`estimate`, from the nonzero count alone."""
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        machine = self.machine
        line = machine.line_size
        flops = 2.0 * nnz
        cmgs_used = -(-num_threads // machine.cores_per_cmg)

        t_compute = flops / (num_threads * self.core_spmv_flops)
        l1l2_bytes = float(events.l1_refill) * line
        t_l1l2 = l1l2_bytes / (num_threads * machine.l2_bandwidth_per_core)
        mem_bytes = float(events.traffic_bytes(line))
        t_memory = mem_bytes / (cmgs_used * machine.mem_bandwidth_per_cmg)
        t_latency = (
            float(events.l2_demand_misses)
            * machine.demand_miss_latency
            / (num_threads * self.mlp)
        )
        seconds = max(t_compute, t_l1l2, t_memory) + t_latency
        return PerformanceEstimate(
            seconds=seconds,
            gflops=flops / seconds / 1e9,
            components={
                "compute": t_compute,
                "l1l2": t_l1l2,
                "memory": t_memory,
                "demand_latency": t_latency,
            },
            bandwidth_gbs=mem_bytes / seconds / 1e9,
        )

    def speedup(
        self,
        matrix: CSRMatrix,
        baseline: CacheEvents,
        configured: CacheEvents,
        num_threads: int,
    ) -> float:
        """Modelled speedup of a sector configuration over the baseline."""
        t0 = self.estimate(matrix, baseline, num_threads).seconds
        t1 = self.estimate(matrix, configured, num_threads).seconds
        return t0 / t1
