"""Machine model of the Fujitsu A64FX memory hierarchy.

The A64FX (as described in the paper's Section 4.1 and the Fujitsu
micro-architecture manual) is a 48-core processor organised as four Core
Memory Groups (CMGs, i.e. NUMA domains) of 12 cores each.  Every core has a
private 64 KiB, 4-way set-associative L1D cache; every CMG shares an 8 MiB,
16-way L2 segment connected to one HBM2 module.  The cache line size is an
unusually large 256 bytes at both levels.

The *sector cache* partitions a cache way-wise into up to four sectors.  The
Fujitsu compiler directives used in the paper expose two sectors: sector 1
receives an explicit number of ways, sector 0 keeps the remainder.

Because the reproduction runs on commodity hardware in pure Python, a
*scaled* machine is provided: dividing the number of L1/L2 sets by a scale
factor shrinks capacities while preserving line size, associativity, core
count and — crucially — the working-set/cache *ratios* that define the
paper's matrix classes (1), (2), (3a), (3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    Attributes
    ----------
    line_size:
        Cache line size in bytes.
    num_sets:
        Number of sets.
    ways:
        Associativity (number of ways per set).
    """

    line_size: int
    num_sets: int
    ways: int

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ValueError(f"line_size must be a positive power of two, got {self.line_size}")
        if self.num_sets <= 0:
            raise ValueError(f"num_sets must be positive, got {self.num_sets}")
        if self.ways <= 0:
            raise ValueError(f"ways must be positive, got {self.ways}")

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.line_size * self.num_sets * self.ways

    @property
    def capacity_lines(self) -> int:
        """Total capacity in cache lines."""
        return self.num_sets * self.ways

    def scaled(self, factor: int) -> "CacheGeometry":
        """Return a geometry with ``num_sets`` divided by ``factor``.

        Line size and associativity are preserved so that spatial locality
        and way-partitioning behave identically on the scaled machine.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        if self.num_sets % factor:
            raise ValueError(
                f"num_sets={self.num_sets} not divisible by scale factor {factor}"
            )
        return replace(self, num_sets=self.num_sets // factor)

    def partition_lines(self, sector1_ways: int) -> tuple[int, int]:
        """Capacities in lines of (sector 0, sector 1) for a way split.

        ``sector1_ways == 0`` means the sector cache is disabled and the
        full capacity belongs to sector 0.
        """
        if not 0 <= sector1_ways <= self.ways:
            raise ValueError(
                f"sector1_ways must be in [0, {self.ways}], got {sector1_ways}"
            )
        n1 = self.num_sets * sector1_ways
        return self.capacity_lines - n1, n1


@dataclass(frozen=True)
class A64FX:
    """Full machine model: cores, CMGs, caches, and throughput constants.

    The throughput/latency constants are the calibration points of the
    ECM-style performance model (:mod:`repro.machine.perfmodel`); defaults
    reflect the published A64FX figures (1024 GB/s peak HBM2 bandwidth,
    ~800 GB/s sustained, 512-bit SVE FMA pipes).
    """

    num_cores: int = 48
    num_cmgs: int = 4
    l1: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(line_size=256, num_sets=64, ways=4)
    )
    l2: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(line_size=256, num_sets=2048, ways=16)
    )
    #: sustained memory bandwidth per CMG in bytes/s (4 x 200 GB/s ~= 800 GB/s)
    mem_bandwidth_per_cmg: float = 200e9
    #: sustained L2 -> L1 bandwidth per core in bytes/s (64 B/cycle @ 2 GHz)
    l2_bandwidth_per_core: float = 128e9
    #: double-precision peak per core in flop/s (2 x 512-bit FMA @ 2 GHz)
    flops_per_core: float = 32e9
    #: average latency of an L2 demand miss in seconds (~130 ns on A64FX)
    demand_miss_latency: float = 130e-9
    #: memory-level parallelism available to hide demand-miss latency
    mlp: float = 12.0
    #: scale factor this instance was derived with (1 = full machine)
    scale: int = 1

    def __post_init__(self) -> None:
        if self.num_cores % self.num_cmgs:
            raise ValueError(
                f"num_cores={self.num_cores} must be divisible by num_cmgs={self.num_cmgs}"
            )
        if self.l1.line_size != self.l2.line_size:
            raise ValueError("L1 and L2 must share a line size")

    @property
    def cores_per_cmg(self) -> int:
        return self.num_cores // self.num_cmgs

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    @property
    def l2_total_bytes(self) -> int:
        """Aggregate L2 capacity over all CMG segments."""
        return self.l2.capacity_bytes * self.num_cmgs

    @property
    def mem_bandwidth(self) -> float:
        """Aggregate sustained memory bandwidth in bytes/s."""
        return self.mem_bandwidth_per_cmg * self.num_cmgs

    def cmg_of_thread(self, thread: int) -> int:
        """CMG index of a thread under close/compact binding."""
        if not 0 <= thread < self.num_cores:
            raise ValueError(f"thread must be in [0, {self.num_cores}), got {thread}")
        return thread // self.cores_per_cmg

    def scaled(self, factor: int, l1_factor: int | None = None) -> "A64FX":
        """Return a machine with the cache levels scaled down.

        Bandwidth and latency constants are kept; the performance model
        consumes per-reference miss *ratios* from the scaled simulation and
        projects them onto full-size traffic volumes, so the constants always
        refer to the full machine.

        ``l1_factor`` defaults to half of ``factor``: the L1's job in SpMV is
        absorbing the unit-stride streams and short-range x reuse, which a
        too-aggressively scaled L1 (a handful of lines) cannot represent.
        """
        if l1_factor is None:
            l1_factor = max(1, factor // 2)
        return replace(
            self,
            l1=self.l1.scaled(l1_factor),
            l2=self.l2.scaled(factor),
            scale=self.scale * factor,
        )


def full_machine() -> A64FX:
    """The unscaled 48-core A64FX."""
    return A64FX()


def scaled_machine(factor: int = 16, l1_factor: int | None = None) -> A64FX:
    """The default reproduction testbed: an A64FX scaled down by ``factor``.

    With the default factor 16 each L2 segment is 512 KiB (128 sets, 16
    ways) and each L1D is 8 KiB (8 sets, 4 ways), keeping the 256-byte
    line size and the way counts that the sector-cache experiments split.
    """
    if factor <= 1:
        return full_machine()
    return full_machine().scaled(factor, l1_factor)
