"""Cache-line layout of the SpMV data structures.

The model (paper Section 3.2.1, Fig. 1c) assigns cache-line numbers to the
elements of the five data structures involved in CSR SpMV.  Each array is
assumed to be aligned to a cache-line boundary and arrays occupy disjoint
line ranges — matching the paper's NUMA-aware, page-aligned allocations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..spmv.csr import (
    COLIDX_BYTES,
    CSRMatrix,
    ROWPTR_BYTES,
    VALUE_BYTES,
    VECTOR_BYTES,
)
from ..spmv.sector_policy import ARRAYS

#: Stable integer ids for the five kernel arrays (index into ARRAYS).
ARRAY_ID = {name: i for i, name in enumerate(ARRAYS)}
X, Y, VALUES, COLIDX, ROWPTR = (ARRAY_ID[a] for a in ARRAYS)

_ELEMENT_BYTES = {
    "x": VECTOR_BYTES,
    "y": VECTOR_BYTES,
    "values": VALUE_BYTES,
    "colidx": COLIDX_BYTES,
    "rowptr": ROWPTR_BYTES,
}


@dataclass(frozen=True)
class MemoryLayout:
    """Line-granular placement of the SpMV arrays.

    ``base[k]`` is the first global line number of array ``ARRAYS[k]``;
    ``num_lines[k]`` its extent.  Arrays never share a line.
    """

    line_size: int
    base: np.ndarray
    num_lines: np.ndarray

    @classmethod
    def from_counts(cls, counts: dict[str, int], line_size: int) -> "MemoryLayout":
        """Lay out the five kernel arrays with explicit element counts.

        Used for storage formats whose array extents differ from CSR's
        (e.g. SELL-C-sigma, whose value/colidx arrays include padding and
        whose "rowptr" slot holds the chunk pointer).
        """
        if line_size <= 0:
            raise ValueError("line_size must be positive")
        missing = set(ARRAYS) - set(counts)
        if missing:
            raise ValueError(f"missing element counts for {sorted(missing)}")
        num_lines = np.array(
            [
                -(-counts[a] * _ELEMENT_BYTES[a] // line_size)
                for a in ARRAYS
            ],
            dtype=np.int64,
        )
        base = np.zeros(len(ARRAYS), dtype=np.int64)
        np.cumsum(num_lines[:-1], out=base[1:])
        return cls(line_size=line_size, base=base, num_lines=num_lines)

    @classmethod
    def for_matrix(cls, matrix: CSRMatrix, line_size: int) -> "MemoryLayout":
        """Lay out x, y, values, colidx, rowptr consecutively, line-aligned."""
        return cls.from_counts(
            {
                "x": matrix.num_cols,
                "y": matrix.num_rows,
                "values": matrix.nnz,
                "colidx": matrix.nnz,
                "rowptr": matrix.num_rows + 1,
            },
            line_size,
        )

    @property
    def total_lines(self) -> int:
        return int(self.base[-1] + self.num_lines[-1])

    def lines_of(self, array: str, elements: np.ndarray) -> np.ndarray:
        """Global line numbers of the given element indices of ``array``."""
        aid = ARRAY_ID[array]
        elements = np.asarray(elements, dtype=np.int64)
        if elements.size and (
            elements.min() < 0
            or elements.max() * _ELEMENT_BYTES[array] // self.line_size
            >= self.num_lines[aid]
        ):
            raise ValueError(f"element index out of range for array {array!r}")
        return self.base[aid] + elements * _ELEMENT_BYTES[array] // self.line_size

    def array_of_line(self, line: int) -> str:
        """Name of the array owning a global line number."""
        if not 0 <= line < self.total_lines:
            raise ValueError(f"line {line} outside layout")
        idx = int(np.searchsorted(self.base, line, side="right")) - 1
        return ARRAYS[idx]

    def element_bytes(self, array: str) -> int:
        return _ELEMENT_BYTES[array]
