"""Matrix classification by working-set size (paper Section 3.1).

The paper divides matrices into classes predicting whether the sector cache
helps iterative SpMV:

* **class (1)** — matrix and vectors together fit into cache: no capacity
  misses, partitioning cannot help;
* **class (2)** — the whole working set does not fit, but ``x``, ``y`` and
  ``rowptr`` together fit into the large partition: partitioning removes all
  their misses, the biggest win;
* **class (3a)** — ``x``+``y``+``rowptr`` no longer fit, but ``x`` alone
  fits the large partition;
* **class (3b)** — even ``x`` does not fit; isolating the matrix data only
  *lowers* the reuse distance of ``x`` references.

Sizes are compared against one shared L2 segment (the paper's Fig. 4 draws
the L2 boundary at the 8 MiB segment size).  Under parallel execution the
row-partitioned arrays (``y``, ``rowptr``) split across the CMGs while
``x`` may be replicated into every segment, so their bytes are divided by
the number of CMGs used and ``x`` is counted in full.
"""

from __future__ import annotations

import enum

from ..machine.a64fx import A64FX
from ..spmv.csr import CSRMatrix


class MatrixClass(enum.Enum):
    """Working-set classes of Section 3.1."""

    CLASS1 = "1"
    CLASS2 = "2"
    CLASS3A = "3a"
    CLASS3B = "3b"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"class ({self.value})"


def reusable_bytes(matrix: CSRMatrix, num_cmgs: int = 1) -> int:
    """Bytes of the reusable data (x, y, rowptr) seen by one L2 segment."""
    if num_cmgs <= 0:
        raise ValueError("num_cmgs must be positive")
    return matrix.x_bytes + (matrix.y_bytes + matrix.rowptr_bytes) // num_cmgs


def working_set_bytes(matrix: CSRMatrix, num_cmgs: int = 1) -> int:
    """Bytes of the full working set seen by one L2 segment."""
    streamed = matrix.values_bytes + matrix.colidx_bytes
    return reusable_bytes(matrix, num_cmgs) + streamed // num_cmgs


def classify(
    matrix: CSRMatrix,
    machine: A64FX,
    sector1_ways: int = 0,
    num_cmgs: int = 1,
) -> MatrixClass:
    """Classify a matrix for a given sector-1 way count.

    With the sector cache disabled (``sector1_ways == 0``) the "large
    partition" is the whole cache, so classes (2)/(3) describe what
    partitioning *would* achieve; the paper's Fig. 4 uses the 5-way split.
    """
    cache = machine.l2.capacity_bytes
    n0_lines, _ = machine.l2.partition_lines(sector1_ways)
    partition0 = n0_lines * machine.line_size
    if working_set_bytes(matrix, num_cmgs) <= cache:
        return MatrixClass.CLASS1
    if reusable_bytes(matrix, num_cmgs) <= partition0:
        return MatrixClass.CLASS2
    if matrix.x_bytes <= partition0:
        return MatrixClass.CLASS3A
    return MatrixClass.CLASS3B
