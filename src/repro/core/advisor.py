"""Sector-cache policy advisor.

The paper's practical payoff: given a matrix and an execution setup, decide
*whether* to enable the sector cache, *how many* ways to give the
non-temporal data, and *which* arrays to isolate — the decisions a user
encodes in the FCC pragmas of Listing 1.  Section 3.1 sketches the
decision procedure by class; this module implements it quantitatively with
the cache-miss model (method B by default, since the advisor's point is
being cheap) and the performance model.

The advisor also evaluates the Section-3.1 alternative for class-(3)
matrices — additionally assigning ``rowptr`` and ``y`` to the small
partition so ``x`` gets the largest possible share.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.a64fx import A64FX
from ..machine.perfmodel import PerformanceModel
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule
from ..spmv.sector_policy import SectorPolicy, isolate_x_policy, listing1_policy, no_sector_cache
from ..cachesim.events import CacheEvents
from .analytic import stream_misses
from .classification import MatrixClass, classify
from .method_b import MethodB


@dataclass(frozen=True)
class PolicyChoice:
    """One evaluated candidate policy."""

    policy: SectorPolicy
    predicted_l2_misses: int
    predicted_seconds: float

    @property
    def pragma(self) -> str:
        return self.policy.describe()

    def to_dict(self) -> dict:
        """JSON-serialisable form (the service wire format)."""
        return {
            "policy": self.policy.to_dict(),
            "predicted_l2_misses": int(self.predicted_l2_misses),
            "predicted_seconds": float(self.predicted_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyChoice":
        return cls(
            policy=SectorPolicy.from_dict(payload["policy"]),
            predicted_l2_misses=int(payload["predicted_l2_misses"]),
            predicted_seconds=float(payload["predicted_seconds"]),
        )


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict: best policy plus the evaluated field."""

    best: PolicyChoice
    baseline: PolicyChoice
    candidates: tuple[PolicyChoice, ...]
    matrix_class: MatrixClass

    @property
    def predicted_speedup(self) -> float:
        return self.baseline.predicted_seconds / self.best.predicted_seconds

    @property
    def worthwhile(self) -> bool:
        """True if enabling the sector cache is predicted to help at all."""
        return (
            self.best.policy.l2_enabled
            and self.best.predicted_l2_misses < self.baseline.predicted_l2_misses
        )

    def summary(self) -> str:
        lines = [
            f"matrix class: {self.matrix_class}",
            f"recommended: {self.best.pragma}",
            f"predicted L2 misses: {self.baseline.predicted_l2_misses} -> "
            f"{self.best.predicted_l2_misses}",
            f"predicted speedup: {self.predicted_speedup:.3f}x",
        ]
        if not self.worthwhile:
            lines.append("verdict: leave the sector cache disabled")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form.

        The derived fields (``predicted_speedup``, ``worthwhile``) are
        included for consumers that only read the verdict;
        :meth:`from_dict` ignores them and recomputes.
        """
        return {
            "best": self.best.to_dict(),
            "baseline": self.baseline.to_dict(),
            "candidates": [choice.to_dict() for choice in self.candidates],
            "matrix_class": self.matrix_class.value,
            "predicted_speedup": float(self.predicted_speedup),
            "worthwhile": self.worthwhile,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Recommendation":
        return cls(
            best=PolicyChoice.from_dict(payload["best"]),
            baseline=PolicyChoice.from_dict(payload["baseline"]),
            candidates=tuple(
                PolicyChoice.from_dict(choice) for choice in payload["candidates"]
            ),
            matrix_class=MatrixClass(payload["matrix_class"]),
        )


class SectorAdvisor:
    """Pick a sector policy for a matrix from model predictions alone.

    Every candidate is priced with one method-B pass (a single stack
    processing of the x trace serves every way split), then ranked by the
    performance model's predicted runtime; ties break toward fewer
    sector-1 ways (more space for the reusable data).
    """

    def __init__(
        self,
        machine: A64FX,
        num_threads: int = 48,
        way_options: tuple[int, ...] = (2, 3, 4, 5, 6),
        consider_isolate_x: bool = True,
        min_sector1_ways_with_prefetch: int = 4,
    ) -> None:
        if not way_options:
            raise ValueError("way_options must not be empty")
        self.machine = machine
        self.num_threads = num_threads
        self.way_options = way_options
        self.consider_isolate_x = consider_isolate_x
        #: Section 4.3: smaller sectors suffer premature eviction of
        #: prefetched lines; the advisor refuses them unless told otherwise.
        self.min_ways = min_sector1_ways_with_prefetch
        self.perf = PerformanceModel(machine)

    def _choice(
        self, model: MethodB, matrix: CSRMatrix, policy: SectorPolicy
    ) -> PolicyChoice:
        misses = model.predict(policy).l2_misses
        streams = stream_misses(matrix, self.machine.line_size)
        # model-level event surrogate: all predicted misses are refills;
        # the demand share is whatever prefetchable streams cannot cover
        prediction = model.predict(policy)
        prefetchable = sum(
            prediction.per_array.get(a, 0)
            for a in ("values", "colidx", "rowptr", "y")
        )
        demand = prediction.per_array.get("x", 0)
        events = CacheEvents(
            l1_refill=streams.total + matrix.nnz // 8,
            l2_refill=misses,
            l2_refill_demand=demand,
            l2_refill_prefetch=prefetchable,
            l2_writeback=streams.y if misses else 0,
        )
        est = self.perf.estimate(matrix, events, self.num_threads)
        return PolicyChoice(
            policy=policy, predicted_l2_misses=misses, predicted_seconds=est.seconds
        )

    def recommend(
        self, matrix: CSRMatrix, schedule: RowSchedule | None = None
    ) -> Recommendation:
        """Evaluate candidates and return the ranked recommendation."""
        model = MethodB(
            matrix, self.machine, num_threads=self.num_threads, schedule=schedule
        )
        num_cmgs = -(-self.num_threads // self.machine.cores_per_cmg)
        cls = classify(matrix, self.machine, max(self.way_options), num_cmgs)

        baseline = self._choice(model, matrix, no_sector_cache())
        candidates = [baseline]
        for ways in self.way_options:
            if ways < self.min_ways:
                continue
            candidates.append(self._choice(model, matrix, listing1_policy(ways)))
        if self.consider_isolate_x and cls in (MatrixClass.CLASS3A, MatrixClass.CLASS3B):
            for ways in self.way_options:
                if ways < self.min_ways:
                    continue
                policy = isolate_x_policy(ways)
                misses = _isolate_x_misses(model, matrix, self.machine, ways)
                streams = stream_misses(matrix, self.machine.line_size)
                events = CacheEvents(
                    l1_refill=streams.total + matrix.nnz // 8,
                    l2_refill=misses,
                    l2_refill_demand=max(0, misses - streams.total),
                    l2_refill_prefetch=min(misses, streams.total),
                    l2_writeback=streams.y,
                )
                est = self.perf.estimate(matrix, events, self.num_threads)
                candidates.append(
                    PolicyChoice(policy, misses, est.seconds)
                )
        best = min(
            candidates,
            key=lambda c: (c.predicted_seconds, c.policy.l2_sector1_ways),
        )
        return Recommendation(
            best=best,
            baseline=baseline,
            candidates=tuple(candidates),
            matrix_class=cls,
        )


def _isolate_x_misses(model: MethodB, matrix: CSRMatrix, machine: A64FX, ways: int) -> int:
    """Predicted misses for the Section-3.1 isolate-x policy.

    ``x`` owns partition 0 alone, so its reuse distances need no scaling
    (the third case of Section 3.2.2); everything else streams through
    sector 1.
    """
    n0, _ = machine.l2.partition_lines(ways)
    streams = stream_misses(matrix, machine.line_size)
    x_misses = model.x_misses(1.0, n0)
    return streams.total + x_misses
