"""Sector-cache policy advisor.

The paper's practical payoff: given a matrix and an execution setup, decide
*whether* to enable the sector cache, *how many* ways to give the
non-temporal data, and *which* arrays to isolate — the decisions a user
encodes in the FCC pragmas of Listing 1.  Section 3.1 sketches the
decision procedure by class; this module implements it quantitatively with
the cache-miss model (method B by default, since the advisor's point is
being cheap) and the performance model.

The advisor also evaluates the Section-3.1 alternative for class-(3)
matrices — additionally assigning ``rowptr`` and ``y`` to the small
partition so ``x`` gets the largest possible share.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.a64fx import A64FX
from ..machine.perfmodel import PerformanceModel
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule
from ..spmv.sector_policy import SectorPolicy, isolate_x_policy, listing1_policy, no_sector_cache
from ..cachesim.events import CacheEvents
from .analytic import stream_misses
from .classification import MatrixClass, classify
from .method_b import MethodB


@dataclass(frozen=True)
class PolicyChoice:
    """One evaluated candidate policy."""

    policy: SectorPolicy
    predicted_l2_misses: int
    predicted_seconds: float

    @property
    def pragma(self) -> str:
        return self.policy.describe()

    def to_dict(self) -> dict:
        """JSON-serialisable form (the service wire format)."""
        return {
            "policy": self.policy.to_dict(),
            "predicted_l2_misses": int(self.predicted_l2_misses),
            "predicted_seconds": float(self.predicted_seconds),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PolicyChoice":
        return cls(
            policy=SectorPolicy.from_dict(payload["policy"]),
            predicted_l2_misses=int(payload["predicted_l2_misses"]),
            predicted_seconds=float(payload["predicted_seconds"]),
        )


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict: best policy plus the evaluated field."""

    best: PolicyChoice
    baseline: PolicyChoice
    candidates: tuple[PolicyChoice, ...]
    matrix_class: MatrixClass

    @property
    def predicted_speedup(self) -> float:
        return self.baseline.predicted_seconds / self.best.predicted_seconds

    @property
    def worthwhile(self) -> bool:
        """True if enabling the sector cache is predicted to help at all."""
        return (
            self.best.policy.l2_enabled
            and self.best.predicted_l2_misses < self.baseline.predicted_l2_misses
        )

    def summary(self) -> str:
        lines = [
            f"matrix class: {self.matrix_class}",
            f"recommended: {self.best.pragma}",
            f"predicted L2 misses: {self.baseline.predicted_l2_misses} -> "
            f"{self.best.predicted_l2_misses}",
            f"predicted speedup: {self.predicted_speedup:.3f}x",
        ]
        if not self.worthwhile:
            lines.append("verdict: leave the sector cache disabled")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form.

        The derived fields (``predicted_speedup``, ``worthwhile``) are
        included for consumers that only read the verdict;
        :meth:`from_dict` ignores them and recomputes.
        """
        return {
            "best": self.best.to_dict(),
            "baseline": self.baseline.to_dict(),
            "candidates": [choice.to_dict() for choice in self.candidates],
            "matrix_class": self.matrix_class.value,
            "predicted_speedup": float(self.predicted_speedup),
            "worthwhile": self.worthwhile,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Recommendation":
        return cls(
            best=PolicyChoice.from_dict(payload["best"]),
            baseline=PolicyChoice.from_dict(payload["baseline"]),
            candidates=tuple(
                PolicyChoice.from_dict(choice) for choice in payload["candidates"]
            ),
            matrix_class=MatrixClass(payload["matrix_class"]),
        )


def surrogate_choice(
    perf: PerformanceModel,
    nnz: int,
    streams,
    num_threads: int,
    policy: SectorPolicy,
    per_array: dict,
) -> PolicyChoice:
    """Price one candidate policy from its per-array miss counts.

    The single home of the model-level event surrogate shared by the full
    advisor, degraded mode and the fidelity ladder: all predicted misses
    are refills, the demand share is whatever the prefetchable streams
    cannot cover.  ``per_array`` is the zero-filtered miss dict of
    :func:`repro.core.analytic.method_b_per_array` (any x pricing).
    """
    misses = sum(per_array.values())
    prefetchable = sum(
        per_array.get(a, 0) for a in ("values", "colidx", "rowptr", "y")
    )
    events = CacheEvents(
        l1_refill=streams.total + nnz // 8,
        l2_refill=misses,
        l2_refill_demand=per_array.get("x", 0),
        l2_refill_prefetch=prefetchable,
        l2_writeback=streams.y if misses else 0,
    )
    est = perf.estimate_from_counts(nnz, events, num_threads)
    return PolicyChoice(
        policy=policy, predicted_l2_misses=misses, predicted_seconds=est.seconds
    )


def isolate_x_choice(
    perf: PerformanceModel,
    nnz: int,
    streams,
    num_threads: int,
    ways: int,
    x_misses: int,
) -> PolicyChoice:
    """Price the Section-3.1 isolate-x candidate for a way count.

    ``x`` owns partition 0 alone (its reuse distances need no scaling —
    the third case of Section 3.2.2, so ``x_misses`` is priced at scale
    1.0); everything else streams through sector 1.
    """
    misses = streams.total + x_misses
    events = CacheEvents(
        l1_refill=streams.total + nnz // 8,
        l2_refill=misses,
        l2_refill_demand=max(0, misses - streams.total),
        l2_refill_prefetch=min(misses, streams.total),
        l2_writeback=streams.y,
    )
    est = perf.estimate_from_counts(nnz, events, num_threads)
    return PolicyChoice(
        policy=isolate_x_policy(ways),
        predicted_l2_misses=misses,
        predicted_seconds=est.seconds,
    )


def recommend_from_predictions(
    *,
    machine: A64FX,
    num_threads: int,
    way_options,
    consider_isolate_x: bool,
    min_ways: int,
    matrix_class: MatrixClass,
    nnz: int,
    streams,
    per_array_fn,
    x_misses_fn,
) -> Recommendation:
    """Shared candidate enumeration and ranking of the sector advisor.

    ``per_array_fn(policy)`` supplies the per-array miss counts of one
    candidate and ``x_misses_fn(scale, capacity_lines)`` the x pricing for
    the isolate-x candidates; everything else — the candidate field, the
    prefetch-premature-eviction gate (``min_ways``), the class gate on
    isolate-x, the performance-model ranking and the fewer-ways tie-break
    — is identical no matter which fidelity tier computed the misses.
    """
    if not way_options:
        raise ValueError("way_options must not be empty")
    perf = PerformanceModel(machine)

    base_policy = no_sector_cache()
    baseline = surrogate_choice(
        perf, nnz, streams, num_threads, base_policy, per_array_fn(base_policy)
    )
    candidates = [baseline]
    for ways in way_options:
        if ways < min_ways:
            continue
        policy = listing1_policy(ways)
        candidates.append(
            surrogate_choice(
                perf, nnz, streams, num_threads, policy, per_array_fn(policy)
            )
        )
    if consider_isolate_x and matrix_class in (MatrixClass.CLASS3A, MatrixClass.CLASS3B):
        for ways in way_options:
            if ways < min_ways:
                continue
            n0, _ = machine.l2.partition_lines(ways)
            candidates.append(
                isolate_x_choice(
                    perf, nnz, streams, num_threads, ways, x_misses_fn(1.0, n0)
                )
            )
    best = min(
        candidates,
        key=lambda c: (c.predicted_seconds, c.policy.l2_sector1_ways),
    )
    return Recommendation(
        best=best,
        baseline=baseline,
        candidates=tuple(candidates),
        matrix_class=matrix_class,
    )


class SectorAdvisor:
    """Pick a sector policy for a matrix from model predictions alone.

    Every candidate is priced with one method-B pass (a single stack
    processing of the x trace serves every way split), then ranked by the
    performance model's predicted runtime; ties break toward fewer
    sector-1 ways (more space for the reusable data).
    """

    def __init__(
        self,
        machine: A64FX,
        num_threads: int = 48,
        way_options: tuple[int, ...] = (2, 3, 4, 5, 6),
        consider_isolate_x: bool = True,
        min_sector1_ways_with_prefetch: int = 4,
    ) -> None:
        if not way_options:
            raise ValueError("way_options must not be empty")
        self.machine = machine
        self.num_threads = num_threads
        self.way_options = way_options
        self.consider_isolate_x = consider_isolate_x
        #: Section 4.3: smaller sectors suffer premature eviction of
        #: prefetched lines; the advisor refuses them unless told otherwise.
        self.min_ways = min_sector1_ways_with_prefetch
        self.perf = PerformanceModel(machine)

    def recommend(
        self, matrix: CSRMatrix, schedule: RowSchedule | None = None
    ) -> Recommendation:
        """Evaluate candidates and return the ranked recommendation."""
        model = MethodB(
            matrix, self.machine, num_threads=self.num_threads, schedule=schedule
        )
        num_cmgs = -(-self.num_threads // self.machine.cores_per_cmg)
        cls = classify(matrix, self.machine, max(self.way_options), num_cmgs)
        streams = stream_misses(matrix, self.machine.line_size)
        return recommend_from_predictions(
            machine=self.machine,
            num_threads=self.num_threads,
            way_options=self.way_options,
            consider_isolate_x=self.consider_isolate_x,
            min_ways=self.min_ways,
            matrix_class=cls,
            nnz=matrix.nnz,
            streams=streams,
            per_array_fn=lambda policy: model.predict(policy).per_array,
            x_misses_fn=model.x_misses,
        )
