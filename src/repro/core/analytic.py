"""Closed-form miss counts for the streamed SpMV arrays (Section 3.1).

For an M-by-N matrix with K nonzeros and cache line size L, one SpMV sweep
streams:

* the nonzero values (8-byte):       ``ceil(8K / L)`` lines,
* the column indices (4-byte):       ``ceil(4K / L)`` lines,
* the row pointers (8-byte, M+1):    ``ceil(8(M+1) / L)`` lines,
* the output vector (8-byte, M):     ``ceil(8M / L)`` lines.

In steady-state iterative SpMV, an array incurs exactly its line count in
capacity misses per iteration whenever it cannot be retained in the cache
space available to it, and zero otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..spmv.csr import CSRMatrix


def _lines(num_bytes: int, line_size: int) -> int:
    return -(-num_bytes // line_size)


@dataclass(frozen=True)
class StreamMisses:
    """Per-array streaming line counts of one SpMV iteration."""

    values: int
    colidx: int
    rowptr: int
    y: int

    @property
    def matrix_data(self) -> int:
        """Lines of the non-temporal matrix data (paper: a + colidx)."""
        return self.values + self.colidx

    @property
    def vectors(self) -> int:
        """Lines of the row-wise streamed reusable data (rowptr + y)."""
        return self.rowptr + self.y

    @property
    def total(self) -> int:
        return self.matrix_data + self.vectors


def stream_misses(matrix: CSRMatrix, line_size: int) -> StreamMisses:
    """Streaming miss counts of Section 3.1 for one SpMV iteration."""
    if line_size <= 0:
        raise ValueError("line_size must be positive")
    return StreamMisses(
        values=_lines(matrix.values_bytes, line_size),
        colidx=_lines(matrix.colidx_bytes, line_size),
        rowptr=_lines(matrix.rowptr_bytes, line_size),
        y=_lines(matrix.y_bytes, line_size),
    )


def method_b_per_array(
    matrix,
    machine,
    num_cmgs: int,
    streams: StreamMisses,
    s1: float,
    s2: float,
    x_misses: Callable[[float, int], int],
    policy,
) -> dict[str, int]:
    """Per-array L2 miss counts of one policy under the Method-B envelope.

    This is the single home of the Section-3.1/3.2.2 policy branching:
    streamed arrays contribute their line counts exactly when they cannot
    be retained in the space available to them, and the ``x`` term is
    delegated to ``x_misses(scale, capacity_lines)`` — a reuse-profile
    query (Method B proper), a sampled-profile query (ladder tier 1), or
    the all-or-nothing fit test (tier 0 / degraded mode).  ``matrix`` is
    anything exposing the CSR ``*_bytes`` properties (a ``CSRMatrix`` or
    a ``MatrixDims``).  Zero entries are dropped, matching the wire
    format.
    """
    line = machine.line_size
    per_array: dict[str, int] = {}
    if policy.l2_enabled:
        n0, n1 = machine.l2.partition_lines(policy.l2_sector1_ways)
        # matrix data streams through sector 1: misses unless retained
        if streams.matrix_data // num_cmgs > n1:
            per_array["values"] = streams.values
            per_array["colidx"] = streams.colidx
        # rowptr and y share sector 0 with x: stream misses unless the
        # reusable data fits the partition (class-2 criterion)
        reusable = (
            matrix.x_bytes + (matrix.y_bytes + matrix.rowptr_bytes) // num_cmgs
        )
        if reusable > n0 * line:
            per_array["rowptr"] = streams.rowptr
            per_array["y"] = streams.y
        per_array["x"] = x_misses(s1, n0)
    else:
        total = machine.l2.capacity_lines
        working = (
            matrix.x_bytes + (matrix.total_bytes - matrix.x_bytes) // num_cmgs
        )
        if working > total * line:
            per_array["values"] = streams.values
            per_array["colidx"] = streams.colidx
            per_array["rowptr"] = streams.rowptr
            per_array["y"] = streams.y
            per_array["x"] = x_misses(s2, total)
        else:
            per_array["x"] = 0  # class (1): no capacity misses
    return {k: v for k, v in per_array.items() if v}


def method_b_scale_factors(matrix: CSRMatrix) -> tuple[float, float]:
    """The reuse-distance scaling factors s1, s2 of Section 3.2.2.

    ``s1 = (16 M/K + 8) / 8`` inflates x-only reuse distances when x shares
    its partition with ``rowptr`` and ``y``; ``s2 = (16 M/K + 20) / 8``
    additionally accounts for ``a`` and ``colidx`` when the cache is not
    partitioned.  Both are the average bytes touched per x element divided
    by the x element size.
    """
    if matrix.nnz == 0:
        raise ValueError("scale factors undefined for an empty matrix")
    ratio = matrix.num_rows / matrix.nnz
    s1 = (16.0 * ratio + 8.0) / 8.0
    s2 = (16.0 * ratio + 20.0) / 8.0
    return s1, s2
