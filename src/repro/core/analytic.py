"""Closed-form miss counts for the streamed SpMV arrays (Section 3.1).

For an M-by-N matrix with K nonzeros and cache line size L, one SpMV sweep
streams:

* the nonzero values (8-byte):       ``ceil(8K / L)`` lines,
* the column indices (4-byte):       ``ceil(4K / L)`` lines,
* the row pointers (8-byte, M+1):    ``ceil(8(M+1) / L)`` lines,
* the output vector (8-byte, M):     ``ceil(8M / L)`` lines.

In steady-state iterative SpMV, an array incurs exactly its line count in
capacity misses per iteration whenever it cannot be retained in the cache
space available to it, and zero otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..spmv.csr import CSRMatrix


def _lines(num_bytes: int, line_size: int) -> int:
    return -(-num_bytes // line_size)


@dataclass(frozen=True)
class StreamMisses:
    """Per-array streaming line counts of one SpMV iteration."""

    values: int
    colidx: int
    rowptr: int
    y: int

    @property
    def matrix_data(self) -> int:
        """Lines of the non-temporal matrix data (paper: a + colidx)."""
        return self.values + self.colidx

    @property
    def vectors(self) -> int:
        """Lines of the row-wise streamed reusable data (rowptr + y)."""
        return self.rowptr + self.y

    @property
    def total(self) -> int:
        return self.matrix_data + self.vectors


def stream_misses(matrix: CSRMatrix, line_size: int) -> StreamMisses:
    """Streaming miss counts of Section 3.1 for one SpMV iteration."""
    if line_size <= 0:
        raise ValueError("line_size must be positive")
    return StreamMisses(
        values=_lines(matrix.values_bytes, line_size),
        colidx=_lines(matrix.colidx_bytes, line_size),
        rowptr=_lines(matrix.rowptr_bytes, line_size),
        y=_lines(matrix.y_bytes, line_size),
    )


def method_b_scale_factors(matrix: CSRMatrix) -> tuple[float, float]:
    """The reuse-distance scaling factors s1, s2 of Section 3.2.2.

    ``s1 = (16 M/K + 8) / 8`` inflates x-only reuse distances when x shares
    its partition with ``rowptr`` and ``y``; ``s2 = (16 M/K + 20) / 8``
    additionally accounts for ``a`` and ``colidx`` when the cache is not
    partitioned.  Both are the average bytes touched per x element divided
    by the x element size.
    """
    if matrix.nnz == 0:
        raise ValueError("scale factors undefined for an empty matrix")
    ratio = matrix.num_rows / matrix.nnz
    s1 = (16.0 * ratio + 8.0) / 8.0
    s2 = (16.0 * ratio + 20.0) / 8.0
    return s1, s2
