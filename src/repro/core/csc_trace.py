"""Memory traces of CSC SpMV (the scatter kernel).

Per column ``c`` the kernel touches::

    colptr[c]  then per nonzero i: values[i], rowidx[i], y[rowidx[i]]  then x[c]

— the exact dual of the CSR pattern: now the indirect, reuse-carrying
references target ``y`` while ``x`` streams.  The sector-cache question
therefore flips, and the same model applies with ``y`` playing the role of
``x`` (the paper's "extends to other kernels" claim, made executable).

Array labels reuse the shared vocabulary so sector policies carry over:
``rowptr`` tags the column pointer, ``colidx`` the row indices.
"""

from __future__ import annotations

import numpy as np

from ..spmv.csc import CSCMatrix
from .layout import COLIDX, MemoryLayout, ROWPTR, VALUES, X, Y
from .trace import MemoryTrace


def csc_layout(matrix: CSCMatrix, line_size: int) -> MemoryLayout:
    """Line layout of the CSC arrays."""
    return MemoryLayout.from_counts(
        {
            "x": matrix.num_cols,
            "y": matrix.num_rows,
            "values": matrix.nnz,
            "colidx": matrix.nnz,      # the 4-byte row indices
            "rowptr": matrix.num_cols + 1,  # the 8-byte column pointer
        },
        line_size,
    )


def csc_thread_trace(
    matrix: CSCMatrix,
    layout: MemoryLayout,
    thread: int,
    col_begin: int,
    col_end: int,
) -> MemoryTrace:
    """Trace of one thread executing columns ``[col_begin, col_end)``."""
    if not 0 <= col_begin <= col_end <= matrix.num_cols:
        raise ValueError("invalid column range")
    num_cols = col_end - col_begin
    if num_cols == 0:
        empty = np.empty(0, dtype=np.int64)
        return MemoryTrace(empty, empty, empty, layout)
    cols = np.arange(col_begin, col_end, dtype=np.int64)
    lengths = matrix.col_lengths[cols]
    nnz = int(lengths.sum())
    n = 2 * num_cols + 3 * nnz + 1

    lines = np.empty(n, dtype=np.int64)
    arrays = np.empty(n, dtype=np.int8)
    seg = 2 + 3 * lengths
    col_off = np.zeros(num_cols, dtype=np.int64)
    np.cumsum(seg[:-1], out=col_off[1:])

    lines[col_off] = layout.lines_of("rowptr", cols)
    arrays[col_off] = ROWPTR
    x_pos = col_off + 1 + 3 * lengths
    lines[x_pos] = layout.lines_of("x", cols)
    arrays[x_pos] = X

    if nnz:
        first = int(matrix.colptr[col_begin])
        nnz_idx = np.arange(first, first + nnz, dtype=np.int64)
        local = np.arange(nnz, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
        )
        base = np.repeat(col_off, lengths) + 1 + 3 * local
        lines[base] = layout.lines_of("values", nnz_idx)
        arrays[base] = VALUES
        lines[base + 1] = layout.lines_of("colidx", nnz_idx)
        arrays[base + 1] = COLIDX
        lines[base + 2] = layout.lines_of("y", matrix.rowidx[nnz_idx])
        arrays[base + 2] = Y

    lines[-1] = layout.lines_of("rowptr", np.array([col_end]))[0]
    arrays[-1] = ROWPTR
    threads = np.full(n, thread, dtype=np.int32)
    return MemoryTrace(lines, arrays, threads, layout)


def csc_trace(
    matrix: CSCMatrix,
    layout: MemoryLayout | None = None,
    num_threads: int = 1,
    line_size: int = 256,
) -> list[MemoryTrace]:
    """Per-thread traces of a CSC SpMV (columns split contiguously)."""
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if layout is None:
        layout = csc_layout(matrix, line_size)
    bounds = np.linspace(0, matrix.num_cols, num_threads + 1).round().astype(int)
    return [
        csc_thread_trace(matrix, layout, t, int(bounds[t]), int(bounds[t + 1]))
        for t in range(num_threads)
    ]
