"""Top-level cache-miss model facade.

:class:`CacheMissModel` bundles methods (A) and (B) behind one interface,
building each lazily (method A's full-trace passes are the expensive part;
method B reuses nothing from A).  It also computes the prediction error
against simulator measurements, which is how the Table 2/3 experiments use
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..cachesim.events import CacheEvents
from ..machine.a64fx import A64FX
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule
from ..spmv.sector_policy import SectorPolicy
from .classification import MatrixClass, classify
from .method_a import MethodA, MissPrediction
from .method_b import MethodB


@dataclass(frozen=True)
class ModelComparison:
    """A prediction next to a measurement."""

    predicted: int
    measured: int

    @property
    def absolute_percentage_error(self) -> float:
        """|measured - predicted| / measured * 100 (Eq. 3 summand)."""
        if self.measured == 0:
            return 0.0 if self.predicted == 0 else float("inf")
        return abs(self.measured - self.predicted) / self.measured * 100.0


class CacheMissModel:
    """Reuse-distance cache-miss model of iterative CSR SpMV.

    Parameters mirror the experimental setup: thread count (1 or 48 in the
    paper), schedule, interleaving, and the steady-state iteration count.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        num_threads: int = 1,
        schedule: RowSchedule | None = None,
        iterations: int = 2,
        interleave_policy: str = "mcs",
        periodic: bool = True,
    ) -> None:
        self.matrix = matrix
        self.machine = machine
        self.num_threads = num_threads
        self.schedule = schedule
        self.iterations = iterations
        self.interleave_policy = interleave_policy
        self.periodic = periodic
        self._method_a: MethodA | None = None
        self._method_b: MethodB | None = None

    @property
    def method_a(self) -> MethodA:
        if self._method_a is None:
            self._method_a = MethodA(
                self.matrix,
                self.machine,
                num_threads=self.num_threads,
                schedule=self.schedule,
                iterations=self.iterations,
                interleave_policy=self.interleave_policy,
                periodic=self.periodic,
            )
        return self._method_a

    @property
    def method_b(self) -> MethodB:
        if self._method_b is None:
            self._method_b = MethodB(
                self.matrix,
                self.machine,
                num_threads=self.num_threads,
                schedule=self.schedule,
                iterations=self.iterations,
                interleave_policy=self.interleave_policy,
                periodic=self.periodic,
            )
        return self._method_b

    def predict(self, policy: SectorPolicy, method: str = "A") -> MissPrediction:
        """Predicted L2 misses per steady-state iteration by method A or B."""
        if method == "A":
            return self.method_a.predict(policy)
        if method == "B":
            return self.method_b.predict(policy)
        raise ValueError(f"method must be 'A' or 'B', got {method!r}")

    def predict_l1(self, policy: SectorPolicy, method: str = "A") -> MissPrediction:
        """Predicted L1 misses per steady-state iteration.

        The returned prediction's count fields are level-agnostic: read the
        L1 total through :attr:`MissPrediction.misses`.
        """
        if method == "A":
            return self.method_a.predict_l1(policy)
        if method == "B":
            return self.method_b.predict_l1(policy)
        raise ValueError(f"method must be 'A' or 'B', got {method!r}")

    def sweep(
        self, policies: Sequence[SectorPolicy], method: str = "A"
    ) -> list[MissPrediction]:
        """Predicted L2 misses for many policies off the shared stack passes.

        The first query of each grouping pays the stack pass; every further
        policy is an O(log n) profile lookup, so sweeping the paper's ~16
        sector configurations costs barely more than predicting one.
        """
        return [self.predict(policy, method) for policy in policies]

    def sweep_l1(
        self, policies: Sequence[SectorPolicy], method: str = "A"
    ) -> list[MissPrediction]:
        """Predicted L1 misses for many policies off the shared stack passes."""
        return [self.predict_l1(policy, method) for policy in policies]

    def compare(
        self, policy: SectorPolicy, events: CacheEvents, method: str = "A"
    ) -> ModelComparison:
        """Prediction vs. a simulator measurement of the same configuration."""
        return ModelComparison(
            predicted=self.predict(policy, method).l2_misses,
            measured=events.l2_misses,
        )

    def matrix_class(self, sector1_ways: int) -> MatrixClass:
        """Section 3.1 class of the matrix under this execution setup."""
        num_cmgs = -(-self.num_threads // self.machine.cores_per_cmg)
        return classify(self.matrix, self.machine, sector1_ways, num_cmgs)
