"""The paper's contribution: reuse-distance cache-miss model for CSR SpMV."""

from .advisor import PolicyChoice, Recommendation, SectorAdvisor
from .analytic import StreamMisses, method_b_scale_factors, stream_misses
from .classification import MatrixClass, classify, reusable_bytes, working_set_bytes
from .csc_trace import csc_layout, csc_trace
from .layout import ARRAY_ID, MemoryLayout
from .method_a import MethodA, MissPrediction
from .method_b import MethodB
from .model import CacheMissModel, ModelComparison
from .partition import PartitionSpec, eq2_misses, unpartitioned_misses
from .sellcs_trace import sellcs_layout, sellcs_trace
from .trace import (
    MemoryTrace,
    concat_traces,
    repeat_trace,
    spmv_thread_trace,
    spmv_trace,
    x_only_trace,
)

__all__ = [
    "ARRAY_ID",
    "CacheMissModel",
    "MatrixClass",
    "MemoryLayout",
    "MemoryTrace",
    "MethodA",
    "MethodB",
    "MissPrediction",
    "ModelComparison",
    "PartitionSpec",
    "PolicyChoice",
    "Recommendation",
    "SectorAdvisor",
    "StreamMisses",
    "classify",
    "concat_traces",
    "csc_layout",
    "csc_trace",
    "eq2_misses",
    "method_b_scale_factors",
    "repeat_trace",
    "reusable_bytes",
    "sellcs_layout",
    "sellcs_trace",
    "spmv_thread_trace",
    "spmv_trace",
    "stream_misses",
    "unpartitioned_misses",
    "working_set_bytes",
    "x_only_trace",
]
