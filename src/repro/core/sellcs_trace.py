"""Memory traces of SELL-C-sigma SpMV.

Extends the paper's trace-synthesis methodology (Section 3.2.1) to the
SELL-C-sigma storage format — the extension its conclusion proposes.  Per
chunk the kernel touches::

    chunk_ptr[c]
    for j in 0..width-1, lane in 0..C-1:  values[slot], colidx[slot], x[colidx[slot]]
    y[row_perm[c*C + lane]]  for each lane

i.e. the matrix data streams column-major inside each chunk, and, unlike
CSR, all C output elements of a chunk are written together.  Padded slots
really are loaded by the SIMD kernel (they multiply by zero), so their
references are included.

The resulting traces feed the same reuse-distance model and cache
simulator as the CSR traces, enabling a sector-cache study of the format
(see ``benchmarks/bench_ablation_sellcs.py``).
"""

from __future__ import annotations

import numpy as np

from ..spmv.schedule import RowSchedule
from ..spmv.sellcs import SellCSigmaMatrix
from .layout import COLIDX, MemoryLayout, ROWPTR, VALUES, X, Y
from .trace import MemoryTrace


def sellcs_layout(matrix: SellCSigmaMatrix, line_size: int) -> MemoryLayout:
    """Line layout of the SELL-C-sigma arrays.

    The ``rowptr`` slot holds the chunk pointer (one 8-byte entry per
    chunk plus the end sentinel), matching its role in the kernel.
    """
    return MemoryLayout.from_counts(
        {
            "x": matrix.num_cols,
            "y": matrix.num_rows,
            "values": matrix.nnz_stored,
            "colidx": matrix.nnz_stored,
            "rowptr": matrix.num_chunks + 1,
        },
        line_size,
    )


def sellcs_thread_trace(
    matrix: SellCSigmaMatrix,
    layout: MemoryLayout,
    thread: int,
    chunk_begin: int,
    chunk_end: int,
) -> MemoryTrace:
    """Trace of one thread executing chunks ``[chunk_begin, chunk_end)``."""
    if not 0 <= chunk_begin <= chunk_end <= matrix.num_chunks:
        raise ValueError("invalid chunk range")
    C = matrix.chunk_size
    chunks = np.arange(chunk_begin, chunk_end, dtype=np.int64)
    if chunks.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return MemoryTrace(empty, empty, empty, layout)
    slots_per_chunk = (matrix.chunk_len[chunks] * C).astype(np.int64)
    lanes_per_chunk = np.minimum(C, matrix.num_rows - chunks * C).astype(np.int64)
    lanes_per_chunk = np.maximum(lanes_per_chunk, 0)
    seg = 1 + 3 * slots_per_chunk + lanes_per_chunk
    total = int(seg.sum())
    lines = np.empty(total, dtype=np.int64)
    arrays = np.empty(total, dtype=np.int8)

    chunk_off = np.zeros(chunks.size, dtype=np.int64)
    np.cumsum(seg[:-1], out=chunk_off[1:])

    # chunk pointer read at the start of each chunk
    lines[chunk_off] = layout.lines_of("rowptr", chunks)
    arrays[chunk_off] = ROWPTR

    nslots = int(slots_per_chunk.sum())
    if nslots:
        slot_chunk = np.repeat(np.arange(chunks.size), slots_per_chunk)
        local = np.arange(nslots, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(slots_per_chunk[:-1]))), slots_per_chunk
        )
        slot_idx = matrix.chunk_ptr[chunks][slot_chunk] + local
        pos = chunk_off[slot_chunk] + 1 + 3 * local
        lines[pos] = layout.lines_of("values", slot_idx)
        arrays[pos] = VALUES
        lines[pos + 1] = layout.lines_of("colidx", slot_idx)
        arrays[pos + 1] = COLIDX
        lines[pos + 2] = layout.lines_of("x", matrix.colidx[slot_idx])
        arrays[pos + 2] = X

    nlanes = int(lanes_per_chunk.sum())
    if nlanes:
        lane_chunk = np.repeat(np.arange(chunks.size), lanes_per_chunk)
        lane_local = np.arange(nlanes, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(lanes_per_chunk[:-1]))), lanes_per_chunk
        )
        rows = matrix.row_perm[chunks[lane_chunk] * C + lane_local]
        pos = chunk_off[lane_chunk] + 1 + 3 * slots_per_chunk[lane_chunk] + lane_local
        lines[pos] = layout.lines_of("y", rows)
        arrays[pos] = Y

    threads = np.full(total, thread, dtype=np.int32)
    return MemoryTrace(lines, arrays, threads, layout)


def sellcs_trace(
    matrix: SellCSigmaMatrix,
    layout: MemoryLayout | None = None,
    num_threads: int = 1,
    line_size: int = 256,
) -> list[MemoryTrace]:
    """Per-thread traces of a (possibly parallel) SELL-C-sigma SpMV.

    Chunks are split into contiguous, chunk-balanced ranges (the static
    schedule at chunk granularity).
    """
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    if layout is None:
        layout = sellcs_layout(matrix, line_size)
    bounds = np.linspace(0, matrix.num_chunks, num_threads + 1).round().astype(int)
    return [
        sellcs_thread_trace(matrix, layout, t, int(bounds[t]), int(bounds[t + 1]))
        for t in range(num_threads)
    ]
