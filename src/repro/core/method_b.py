"""Method (B): cache-miss approximation from the column indices alone.

Section 3.2.2 of the paper: instead of processing the full kernel trace,
process only the x-vector access trace (given directly by ``colidx``) — a
3-5x smaller reference set — and recover the effect of the other arrays
analytically:

* x-only reuse distances are inflated by ``s1 = (16 M/K + 8)/8`` when x
  shares its partition with ``rowptr`` and ``y`` (partitioned case), or by
  ``s2 = (16 M/K + 20)/8`` when additionally ``a`` and ``colidx`` compete
  for the same cache (no partitioning);
* misses of the streamed arrays come from the closed-form line counts of
  Section 3.1, gated by the class considerations (an array streams misses
  iff it cannot be retained in the space available to it).

One stack pass covers every sector configuration.  The documented accuracy
loss for matrices with few nonzeros per row and high row-length variation
(the scaling factor is an average) is evaluated in Table 2/3 benches.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from ..machine.a64fx import A64FX
from ..obs.tracer import count as obs_count
from ..obs.tracer import span as obs_span
from ..parallel.interleave import interleave
from ..reuse.cdq import reuse_distances
from ..reuse.histogram import ReuseProfile, scale_distances
from ..reuse.periodic import steady_state_reuse_distances
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import SectorPolicy
from .analytic import method_b_per_array, method_b_scale_factors, stream_misses
from .method_a import MissPrediction
from .trace import repeat_trace, x_only_trace


class MethodB:
    """Column-index-only miss model (single stack pass, analytic envelope)."""

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        num_threads: int = 1,
        schedule: RowSchedule | None = None,
        iterations: int = 2,
        interleave_policy: str = "mcs",
        periodic: bool = True,
    ) -> None:
        if matrix.nnz == 0:
            raise ValueError("method B requires a non-empty matrix")
        self.matrix = matrix
        self.machine = machine
        self.num_threads = num_threads
        self.iterations = iterations
        if schedule is None:
            schedule = static_schedule(matrix, num_threads)
        self.schedule = schedule
        with obs_span("method_b.trace_build", matrix=matrix.name,
                      threads=num_threads):
            per_thread = x_only_trace(matrix, None, schedule, line_size=machine.line_size)
            with obs_span("interleave", policy=interleave_policy):
                merged = interleave(per_thread, interleave_policy)
            # steady-state distances come from a single period (wrap-around reuse
            # for period-first accesses); the doubled trace is the test oracle
            self.periodic = periodic and iterations >= 2
            if self.periodic:
                self.trace = merged
                self._window = None  # the whole period is the steady-state window
            else:
                self.trace = repeat_trace(merged, iterations)
                self._window = self.trace.iteration == iterations - 1
        self._cmgs = (self.trace.threads // machine.cores_per_cmg).astype(np.int64)
        self.s1, self.s2 = method_b_scale_factors(matrix)
        self._streams = stream_misses(matrix, machine.line_size)

    @property
    def num_cmgs_used(self) -> int:
        return int(self._cmgs.max()) + 1 if len(self.trace) else 1

    def _stack_pass(self, groups: np.ndarray) -> np.ndarray:
        with obs_span("method_b.stack_pass", periodic=self.periodic,
                      references=len(self.trace)):
            if self.periodic:
                return steady_state_reuse_distances(self.trace.lines, groups)
            return reuse_distances(self.trace.lines, groups)

    @cached_property
    def _x_rd(self) -> np.ndarray:
        """The single stack pass over x references, per CMG segment."""
        return self._stack_pass(self._cmgs)

    @cached_property
    def _x_rd_l1(self) -> np.ndarray:
        """The per-thread (private L1) stack pass over x references."""
        return self._stack_pass(self.trace.threads.astype(np.int64))

    @cached_property
    def _profile_cache(self) -> dict[tuple[str, float], ReuseProfile]:
        return {}

    def _x_profile(self, level: str, scale: float) -> ReuseProfile:
        """Materialized steady-state profile of scaled x distances.

        The sort is paid once per (cache level, scale factor); every later
        capacity query is an O(log n) ``searchsorted``.  Only the two paper
        factors s1/s2 (plus 1.0) occur, so the cache stays tiny.
        """
        key = (level, float(scale))
        profile = self._profile_cache.get(key)
        if profile is None:
            with obs_span("method_b.profile_build", level=level):
                rd = self._x_rd if level == "l2" else self._x_rd_l1
                if self._window is not None:
                    rd = rd[self._window]
                profile = ReuseProfile.from_distances(scale_distances(rd, scale))
            self._profile_cache[key] = profile
        return profile

    def x_misses(self, scale: float, capacity_lines: int) -> int:
        """Misses of x references with inflated distances vs. a capacity.

        ``scale=1.0`` prices the Section-3.2.2 case (3) where x owns a
        partition alone; s1/s2 price the shared-partition cases.
        """
        obs_count("method_b.profile_queries")
        return self._x_profile("l2", scale).misses(capacity_lines)

    # ------------------------------------------------------------------
    def predict(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted L2 misses of one steady-state iteration."""
        policy.validate(self.machine)
        per_array = method_b_per_array(
            self.matrix,
            self.machine,
            self.num_cmgs_used,
            self._streams,
            self.s1,
            self.s2,
            self.x_misses,
            policy,
        )
        return MissPrediction(
            l2_misses=sum(per_array.values()),
            per_array=per_array,
            method="B",
            policy=policy,
        )

    def predict_l1(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted L1 misses (summed over private caches).

        The x trace is re-grouped per thread; streamed arrays always exceed
        a 64 KiB L1 for the matrix sizes of interest, so they contribute
        their full line counts.  The sum is reported in the prediction's
        level-agnostic :attr:`MissPrediction.misses` (alias of the
        historical ``l2_misses`` field).
        """
        policy.validate(self.machine)
        if policy.l1_enabled:
            n0, _ = self.machine.l1.partition_lines(policy.l1_sector1_ways)
            scale, capacity = self.s1, n0
        else:
            scale, capacity = self.s2, self.machine.l1.capacity_lines
        obs_count("method_b.profile_queries")
        x_miss = self._x_profile("l1", scale).misses(capacity)
        streams = self._streams
        per_array = {
            "values": streams.values,
            "colidx": streams.colidx,
            "rowptr": streams.rowptr,
            "y": streams.y,
            "x": x_miss,
        }
        return MissPrediction(
            l2_misses=sum(per_array.values()),
            per_array=per_array,
            method="B",
            policy=policy,
        )
