"""Partitioned-cache miss accounting (Eq. 2 of the paper).

The partitioned cache is modelled as two independent LRU caches of
capacities ``n0 + n1 = n``: references assigned to sector 1 (``a`` and
``colidx`` under Listing 1) are evaluated against ``n1``, the rest against
``n0``.  Disabling the sector cache is the special case of a single
partition holding everything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..machine.a64fx import CacheGeometry


@dataclass(frozen=True)
class PartitionSpec:
    """Capacities (in lines) of the two sectors of a partitioned cache."""

    n0: int
    n1: int

    def __post_init__(self) -> None:
        if self.n0 < 0 or self.n1 < 0:
            raise ValueError("partition capacities must be non-negative")

    @property
    def total(self) -> int:
        return self.n0 + self.n1

    @classmethod
    def from_ways(cls, geometry: CacheGeometry, sector1_ways: int) -> "PartitionSpec":
        n0, n1 = geometry.partition_lines(sector1_ways)
        return cls(n0=n0, n1=n1)


def eq2_misses(
    rd: np.ndarray,
    sectors: np.ndarray,
    spec: PartitionSpec,
    window: np.ndarray | None = None,
) -> int:
    """Total misses of Eq. (2): per-sector reuse distances vs. capacities.

    ``rd`` must be computed with the partitions as separate reuse groups
    (each sector its own LRU stack).
    """
    rd = np.asarray(rd, dtype=np.int64)
    sectors = np.asarray(sectors)
    if rd.shape != sectors.shape:
        raise ValueError("rd and sectors must be aligned")
    capacity = np.where(sectors == 1, spec.n1, spec.n0)
    miss = rd >= capacity
    if window is not None:
        miss &= np.asarray(window, dtype=bool)
    return int(miss.sum())


def unpartitioned_misses(
    rd: np.ndarray, capacity_lines: int, window: np.ndarray | None = None
) -> int:
    """Misses of the single-partition special case of Eq. (2)."""
    rd = np.asarray(rd, dtype=np.int64)
    miss = rd >= np.int64(capacity_lines)
    if window is not None:
        miss &= np.asarray(window, dtype=bool)
    return int(miss.sum())
