"""Method (A): cache-miss prediction from the full SpMV memory trace.

Section 3.2.1 of the paper: generate the complete reference trace of the
SpMV kernel from the sparsity pattern (no execution), compute exact reuse
distances with stack processing, and apply Eq. (1)/(2):

* without partitioning, an access misses iff its reuse distance reaches the
  cache capacity;
* with partitioning, references to ``a``/``colidx`` are evaluated against
  the sector-1 capacity and all other references against sector 0
  (Eq. 2) — two stack passes in total.

Shared caches under multithreading use the concurrent reuse distance of the
MCS-fair interleaved trace, one logical LRU stack per CMG segment.  The
model is fully associative (the paper's choice); associativity, prefetching
and L1 filtering are exactly the effects the MAPE evaluation quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..machine.a64fx import A64FX
from ..parallel.interleave import interleave
from ..reuse.cdq import reuse_distances
from ..reuse.naive import COLD
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import ARRAYS, SectorPolicy
from .trace import MemoryTrace, repeat_trace, spmv_trace


@dataclass(frozen=True)
class MissPrediction:
    """Predicted miss counts of one steady-state SpMV iteration."""

    l2_misses: int
    per_array: dict[str, int]
    method: str
    policy: SectorPolicy

    def __post_init__(self) -> None:
        for name in self.per_array:
            if name not in ARRAYS:
                raise ValueError(f"unknown array {name!r}")


class MethodA:
    """Full-trace reuse-distance model of L2 (and L1) cache misses.

    Construction builds the trace; both stack passes run lazily and are
    cached, after which any way split is a thresholding query.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        num_threads: int = 1,
        schedule: RowSchedule | None = None,
        iterations: int = 2,
        interleave_policy: str = "mcs",
        sector1_arrays: frozenset[str] = frozenset({"values", "colidx"}),
    ) -> None:
        if num_threads > machine.num_cores:
            raise ValueError("more threads than cores")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.matrix = matrix
        self.machine = machine
        self.num_threads = num_threads
        self.iterations = iterations
        self.sector1_arrays = frozenset(sector1_arrays)
        if schedule is None:
            schedule = static_schedule(matrix, num_threads)
        self.schedule = schedule
        per_thread = spmv_trace(matrix, None, schedule, line_size=machine.line_size)
        merged = interleave(per_thread, interleave_policy)
        self.trace: MemoryTrace = repeat_trace(merged, iterations)
        self._sectors = self.trace.sectors(
            SectorPolicy(sector1_arrays=self.sector1_arrays, l2_sector1_ways=1)
        )
        self._cmgs = (self.trace.threads // machine.cores_per_cmg).astype(np.int64)
        self._window = self.trace.iteration == iterations - 1

    @property
    def num_cmgs_used(self) -> int:
        """CMG segments actually touched by the scheduled threads."""
        return int(self._cmgs.max()) + 1 if len(self.trace) else 1

    @cached_property
    def _rd_partitioned(self) -> np.ndarray:
        groups = self._cmgs * 2 + self._sectors
        return reuse_distances(self.trace.lines, groups)

    @cached_property
    def _rd_shared(self) -> np.ndarray:
        return reuse_distances(self.trace.lines, self._cmgs)

    # ------------------------------------------------------------------
    def predict(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted L2 misses of one steady-state iteration (Eq. 2)."""
        policy.validate(self.machine)
        if policy.l2_enabled and frozenset(policy.sector1_arrays) != self.sector1_arrays:
            raise ValueError("policy sector assignment differs from the modelled one")
        n0, n1 = self.machine.l2.partition_lines(policy.l2_sector1_ways)
        if policy.l2_enabled:
            rd = self._rd_partitioned
            capacity = np.where(self._sectors == 1, n1, n0)
        else:
            rd = self._rd_shared
            capacity = np.int64(self.machine.l2.capacity_lines)
        miss = (rd >= capacity) & self._window
        per_array = {
            name: int(np.count_nonzero(miss & (self.trace.arrays == aid)))
            for aid, name in enumerate(ARRAYS)
        }
        return MissPrediction(
            l2_misses=int(miss.sum()),
            per_array={k: v for k, v in per_array.items() if v},
            method="A",
            policy=policy,
        )

    def predict_l1(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted private-L1 misses, summed over threads (Section 4.5.4)."""
        policy.validate(self.machine)
        threads = self.trace.threads.astype(np.int64)
        n0, n1 = self.machine.l1.partition_lines(policy.l1_sector1_ways)
        if policy.l1_enabled:
            rd = reuse_distances(self.trace.lines, threads * 2 + self._sectors)
            capacity = np.where(self._sectors == 1, n1, n0)
        else:
            rd = reuse_distances(self.trace.lines, threads)
            capacity = np.int64(self.machine.l1.capacity_lines)
        miss = (rd >= capacity) & self._window
        per_array = {
            name: int(np.count_nonzero(miss & (self.trace.arrays == aid)))
            for aid, name in enumerate(ARRAYS)
        }
        return MissPrediction(
            l2_misses=int(miss.sum()),
            per_array={k: v for k, v in per_array.items() if v},
            method="A",
            policy=policy,
        )

    def x_traffic_fraction(self, policy: SectorPolicy) -> float:
        """Fraction of predicted misses caused by x references (Section 4.5.5)."""
        pred = self.predict(policy)
        if pred.l2_misses == 0:
            return 0.0
        return pred.per_array.get("x", 0) / pred.l2_misses

    def cold_misses(self) -> int:
        """Compulsory misses of the first iteration (distinct lines touched)."""
        first = self.trace.iteration == 0
        rd = self._rd_shared
        return int(np.count_nonzero((rd >= COLD) & first))
