"""Method (A): cache-miss prediction from the full SpMV memory trace.

Section 3.2.1 of the paper: generate the complete reference trace of the
SpMV kernel from the sparsity pattern (no execution), compute exact reuse
distances with stack processing, and apply Eq. (1)/(2):

* without partitioning, an access misses iff its reuse distance reaches the
  cache capacity;
* with partitioning, references to ``a``/``colidx`` are evaluated against
  the sector-1 capacity and all other references against sector 0
  (Eq. 2) — two stack passes in total.

Shared caches under multithreading use the concurrent reuse distance of the
MCS-fair interleaved trace, one logical LRU stack per CMG segment.  The
model is fully associative (the paper's choice); associativity, prefetching
and L1 filtering are exactly the effects the MAPE evaluation quantifies.

Each stack pass is condensed into per-array :class:`ReuseProfile` buckets
over the steady-state window (the single-pass-many-capacities property the
paper's Section 2.2 highlights), so every subsequent policy query —
``predict``, ``predict_l1``, ``x_traffic_fraction``, ``cold_misses`` — is a
handful of O(log n) ``searchsorted`` lookups instead of an O(n) mask sweep
over the 4M+9nnz-reference trace.  The 16-configuration sweeps of the
Figure 2/3 experiments are therefore nearly free after the two passes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..machine.a64fx import A64FX
from ..obs.tracer import count as obs_count
from ..obs.tracer import span as obs_span
from ..parallel.interleave import interleave
from ..reuse.cdq import reuse_distances
from ..reuse.histogram import ReuseProfile, partition_profiles
from ..reuse.naive import COLD
from ..reuse.periodic import steady_state_reuse_distances
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import ARRAYS, SectorPolicy
from .trace import MemoryTrace, repeat_trace, spmv_trace


@dataclass(frozen=True)
class MissPrediction:
    """Predicted miss counts of one steady-state SpMV iteration.

    ``l2_misses`` is the total miss count of the *predicted cache level*,
    whatever that level is: ``predict`` fills it with L2 misses, but
    ``predict_l1`` reports L1 misses in the same field (the name is
    historical).  Use the level-agnostic :attr:`misses` alias instead of
    special-casing L1 consumers.
    """

    l2_misses: int
    per_array: dict[str, int]
    method: str
    policy: SectorPolicy

    def __post_init__(self) -> None:
        for name in self.per_array:
            if name not in ARRAYS:
                raise ValueError(f"unknown array {name!r}")

    @property
    def misses(self) -> int:
        """Total predicted misses of the queried cache level (level-agnostic)."""
        return self.l2_misses


class MethodA:
    """Full-trace reuse-distance model of L2 (and L1) cache misses.

    Construction builds the trace; stack passes run lazily, are cached,
    and condense into per-array reuse profiles, after which any way split
    is an O(log n) thresholding query.
    """

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        num_threads: int = 1,
        schedule: RowSchedule | None = None,
        iterations: int = 2,
        interleave_policy: str = "mcs",
        sector1_arrays: frozenset[str] = frozenset({"values", "colidx"}),
        periodic: bool = True,
    ) -> None:
        if num_threads > machine.num_cores:
            raise ValueError("more threads than cores")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        self.matrix = matrix
        self.machine = machine
        self.num_threads = num_threads
        self.iterations = iterations
        self.sector1_arrays = frozenset(sector1_arrays)
        if schedule is None:
            schedule = static_schedule(matrix, num_threads)
        self.schedule = schedule
        with obs_span("method_a.trace_build", matrix=matrix.name,
                      threads=num_threads):
            per_thread = spmv_trace(matrix, None, schedule, line_size=machine.line_size)
            with obs_span("interleave", policy=interleave_policy):
                merged = interleave(per_thread, interleave_policy)
            # The SpMV trace is periodic, so steady-state distances come exactly
            # from one period (wrap-around reuse for period-first accesses); the
            # doubled trace survives as the oracle path for tests and benches.
            self.periodic = periodic and iterations >= 2
            if self.periodic:
                self.trace: MemoryTrace = merged
                self._window = None  # the whole period is the steady-state window
            else:
                self.trace = repeat_trace(merged, iterations)
                self._window = self.trace.iteration == iterations - 1
        self._sectors = self.trace.sectors(
            SectorPolicy(sector1_arrays=self.sector1_arrays, l2_sector1_ways=1)
        )
        self._cmgs = (self.trace.threads // machine.cores_per_cmg).astype(np.int64)
        self._array_sector = tuple(
            1 if name in self.sector1_arrays else 0 for name in ARRAYS
        )

    @property
    def num_cmgs_used(self) -> int:
        """CMG segments actually touched by the scheduled threads."""
        return int(self._cmgs.max()) + 1 if len(self.trace) else 1

    def _stack_pass(self, groups: np.ndarray) -> np.ndarray:
        """One grouped stack pass: steady-state (periodic) or full-trace."""
        with obs_span("method_a.stack_pass", periodic=self.periodic,
                      references=len(self.trace)):
            if self.periodic:
                return steady_state_reuse_distances(self.trace.lines, groups)
            return reuse_distances(self.trace.lines, groups)

    @cached_property
    def _rd_partitioned(self) -> np.ndarray:
        return self._stack_pass(self._cmgs * 2 + self._sectors)

    @cached_property
    def _rd_shared(self) -> np.ndarray:
        return self._stack_pass(self._cmgs)

    @cached_property
    def _rd_l1_partitioned(self) -> np.ndarray:
        threads = self.trace.threads.astype(np.int64)
        return self._stack_pass(threads * 2 + self._sectors)

    @cached_property
    def _rd_l1_shared(self) -> np.ndarray:
        return self._stack_pass(self.trace.threads.astype(np.int64))

    # -- per-array reuse profiles of the steady-state window ------------
    def _window_profiles(self, rd: np.ndarray) -> tuple[ReuseProfile, ...]:
        with obs_span("method_a.profile_build"):
            return partition_profiles(rd, self.trace.arrays, len(ARRAYS), self._window)

    @cached_property
    def _profiles_partitioned(self) -> tuple[ReuseProfile, ...]:
        return self._window_profiles(self._rd_partitioned)

    @cached_property
    def _profiles_shared(self) -> tuple[ReuseProfile, ...]:
        return self._window_profiles(self._rd_shared)

    @cached_property
    def _profiles_l1_partitioned(self) -> tuple[ReuseProfile, ...]:
        return self._window_profiles(self._rd_l1_partitioned)

    @cached_property
    def _profiles_l1_shared(self) -> tuple[ReuseProfile, ...]:
        return self._window_profiles(self._rd_l1_shared)

    @cached_property
    def _first_iteration_profile(self) -> ReuseProfile:
        # oracle path only: first-iteration distances carry the COLD markers
        return ReuseProfile.from_distances(
            self._rd_shared, self.trace.iteration == 0
        )

    @cached_property
    def _periodic_cold_misses(self) -> int:
        # compulsory misses = distinct (CMG, line) pairs of one period
        if not len(self.trace):
            return 0
        span = int(self.trace.lines.max()) + 1
        return int(np.unique(self._cmgs * span + self.trace.lines).size)

    def _query(
        self,
        profiles: tuple[ReuseProfile, ...],
        capacities: tuple[int, ...],
        policy: SectorPolicy,
    ) -> MissPrediction:
        obs_count("method_a.profile_queries")
        per_array = {
            name: profiles[aid].misses(capacities[aid])
            for aid, name in enumerate(ARRAYS)
        }
        return MissPrediction(
            l2_misses=sum(per_array.values()),
            per_array={k: v for k, v in per_array.items() if v},
            method="A",
            policy=policy,
        )

    # ------------------------------------------------------------------
    def predict(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted L2 misses of one steady-state iteration (Eq. 2)."""
        policy.validate(self.machine)
        if policy.l2_enabled and frozenset(policy.sector1_arrays) != self.sector1_arrays:
            raise ValueError("policy sector assignment differs from the modelled one")
        n0, n1 = self.machine.l2.partition_lines(policy.l2_sector1_ways)
        if policy.l2_enabled:
            profiles = self._profiles_partitioned
            capacities = tuple(n1 if s else n0 for s in self._array_sector)
        else:
            profiles = self._profiles_shared
            capacities = (int(self.machine.l2.capacity_lines),) * len(ARRAYS)
        return self._query(profiles, capacities, policy)

    def predict_l1(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted private-L1 misses, summed over threads (Section 4.5.4).

        The sum is reported in the prediction's level-agnostic
        :attr:`MissPrediction.misses` (alias of the historical ``l2_misses``
        field).
        """
        policy.validate(self.machine)
        n0, n1 = self.machine.l1.partition_lines(policy.l1_sector1_ways)
        if policy.l1_enabled:
            profiles = self._profiles_l1_partitioned
            capacities = tuple(n1 if s else n0 for s in self._array_sector)
        else:
            profiles = self._profiles_l1_shared
            capacities = (int(self.machine.l1.capacity_lines),) * len(ARRAYS)
        return self._query(profiles, capacities, policy)

    def x_traffic_fraction(self, policy: SectorPolicy) -> float:
        """Fraction of predicted misses caused by x references (Section 4.5.5)."""
        pred = self.predict(policy)
        if pred.l2_misses == 0:
            return 0.0
        return pred.per_array.get("x", 0) / pred.l2_misses

    def cold_misses(self) -> int:
        """Compulsory misses of the first iteration (distinct lines touched)."""
        if self.periodic:
            return self._periodic_cold_misses
        return self._first_iteration_profile.num_cold

    # -- reference implementation (full-trace mask sweep) ----------------
    # The original O(n)-per-policy evaluation, kept as the semantic oracle:
    # the property tests assert the profile queries match it bit-for-bit,
    # and the benchmarks measure the query layer's speedup against it.
    def _predict_masked(self, policy: SectorPolicy) -> MissPrediction:
        policy.validate(self.machine)
        if policy.l2_enabled and frozenset(policy.sector1_arrays) != self.sector1_arrays:
            raise ValueError("policy sector assignment differs from the modelled one")
        n0, n1 = self.machine.l2.partition_lines(policy.l2_sector1_ways)
        if policy.l2_enabled:
            rd = self._rd_partitioned
            capacity = np.where(self._sectors == 1, n1, n0)
        else:
            rd = self._rd_shared
            capacity = np.int64(self.machine.l2.capacity_lines)
        return self._masked_prediction(rd, capacity, policy)

    def _predict_l1_masked(self, policy: SectorPolicy) -> MissPrediction:
        policy.validate(self.machine)
        n0, n1 = self.machine.l1.partition_lines(policy.l1_sector1_ways)
        if policy.l1_enabled:
            rd = self._rd_l1_partitioned
            capacity = np.where(self._sectors == 1, n1, n0)
        else:
            rd = self._rd_l1_shared
            capacity = np.int64(self.machine.l1.capacity_lines)
        return self._masked_prediction(rd, capacity, policy)

    def _masked_prediction(
        self, rd: np.ndarray, capacity: np.ndarray, policy: SectorPolicy
    ) -> MissPrediction:
        miss = rd >= capacity
        if self._window is not None:
            miss &= self._window
        per_array = {
            name: int(np.count_nonzero(miss & (self.trace.arrays == aid)))
            for aid, name in enumerate(ARRAYS)
        }
        return MissPrediction(
            l2_misses=int(miss.sum()),
            per_array={k: v for k, v in per_array.items() if v},
            method="A",
            policy=policy,
        )

    def _cold_misses_masked(self) -> int:
        if self.periodic:
            # a period *is* one first iteration: run the plain (non-periodic)
            # stack pass over it and count the COLD markers
            rd = reuse_distances(self.trace.lines, self._cmgs)
            return int(np.count_nonzero(rd >= COLD))
        first = self.trace.iteration == 0
        return int(np.count_nonzero((self._rd_shared >= COLD) & first))
