"""Synthetic memory traces of the CSR SpMV kernel.

The model infers the memory access pattern of Listing 1 from the sparsity
pattern alone, without executing SpMV (paper Section 3.2.1).  Per row ``r``
the kernel touches::

    rowptr[r]  then per nonzero i: values[i], colidx[i], x[colidx[i]]  then y[r]

with one trailing ``rowptr`` access for the final bound, matching the access
pattern of Fig. 1(b).  Traces carry, per reference, the global cache-line
number, the owning array, and the issuing thread, so sector assignment and
cache grouping are cheap vectorized lookups afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import ARRAYS, SectorPolicy
from .layout import ARRAY_ID, COLIDX, MemoryLayout, ROWPTR, VALUES, X, Y


@dataclass(frozen=True)
class MemoryTrace:
    """A sequence of memory references at cache-line granularity.

    Attributes
    ----------
    lines:
        Global cache-line number of each reference.
    arrays:
        Array id (:data:`repro.core.layout.ARRAY_ID`) of each reference.
    threads:
        Issuing thread of each reference.
    layout:
        The line layout the ``lines`` refer to.
    is_prefetch:
        True for references injected by a prefetcher model (demand
        references otherwise).  Empty traces keep all-False.
    iteration:
        SpMV iteration index of each reference (0 for a single iteration;
        steady-state modelling repeats the trace and reports the last
        iteration's events only).
    """

    lines: np.ndarray
    arrays: np.ndarray
    threads: np.ndarray
    layout: MemoryLayout
    is_prefetch: np.ndarray = field(default=None)  # type: ignore[assignment]
    iteration: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        object.__setattr__(self, "lines", np.ascontiguousarray(self.lines, dtype=np.int64))
        object.__setattr__(self, "arrays", np.ascontiguousarray(self.arrays, dtype=np.int8))
        object.__setattr__(self, "threads", np.ascontiguousarray(self.threads, dtype=np.int32))
        if self.is_prefetch is None:
            object.__setattr__(
                self, "is_prefetch", np.zeros(self.lines.shape[0], dtype=bool)
            )
        else:
            object.__setattr__(
                self, "is_prefetch", np.ascontiguousarray(self.is_prefetch, dtype=bool)
            )
        if self.iteration is None:
            object.__setattr__(
                self, "iteration", np.zeros(self.lines.shape[0], dtype=np.int32)
            )
        else:
            object.__setattr__(
                self, "iteration", np.ascontiguousarray(self.iteration, dtype=np.int32)
            )
        n = self.lines.shape[0]
        for name in ("arrays", "threads", "is_prefetch", "iteration"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must match trace length {n}")

    def __len__(self) -> int:
        return int(self.lines.shape[0])

    @property
    def num_threads(self) -> int:
        return int(self.threads.max()) + 1 if len(self) else 1

    def sectors(self, policy: SectorPolicy) -> np.ndarray:
        """Sector id (0/1) of each reference under a policy."""
        table = np.array([policy.sector_of(a) for a in ARRAYS], dtype=np.int8)
        return table[self.arrays]

    def array_mask(self, *names: str) -> np.ndarray:
        """Boolean mask of references to the named arrays."""
        ids = [ARRAY_ID[n] for n in names]
        mask = np.zeros(len(self), dtype=bool)
        for aid in ids:
            mask |= self.arrays == aid
        return mask

    def select(self, mask: np.ndarray) -> "MemoryTrace":
        """Subtrace of the masked references (program order preserved)."""
        mask = np.asarray(mask, dtype=bool)
        return MemoryTrace(
            self.lines[mask],
            self.arrays[mask],
            self.threads[mask],
            self.layout,
            self.is_prefetch[mask],
            self.iteration[mask],
        )

    def reorder(self, order: np.ndarray) -> "MemoryTrace":
        """Trace with references permuted into ``order``."""
        order = np.asarray(order, dtype=np.int64)
        return MemoryTrace(
            self.lines[order],
            self.arrays[order],
            self.threads[order],
            self.layout,
            self.is_prefetch[order],
            self.iteration[order],
        )

    def with_iteration(self, iteration: int) -> "MemoryTrace":
        """The same references tagged with a constant iteration index."""
        return MemoryTrace(
            self.lines,
            self.arrays,
            self.threads,
            self.layout,
            self.is_prefetch,
            np.full(len(self), iteration, dtype=np.int32),
        )


def concat_traces(traces: list[MemoryTrace]) -> MemoryTrace:
    """Concatenate traces back to back (program order preserved)."""
    if not traces:
        raise ValueError("need at least one trace")
    return MemoryTrace(
        np.concatenate([t.lines for t in traces]),
        np.concatenate([t.arrays for t in traces]),
        np.concatenate([t.threads for t in traces]),
        traces[0].layout,
        np.concatenate([t.is_prefetch for t in traces]),
        np.concatenate([t.iteration for t in traces]),
    )


def repeat_trace(trace: MemoryTrace, iterations: int) -> MemoryTrace:
    """Concatenate ``iterations`` copies of a trace, numbering iterations.

    Models repeated SpMV (paper Section 3.1): reuse distances of iteration
    ``k > 0`` capture cross-iteration reuse, so restricting event counts to
    the final iteration yields steady-state (warmed-up) behaviour.
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    if iterations == 1:
        return trace
    n = len(trace)
    reps = [trace.iteration + k for k in range(iterations)]
    return MemoryTrace(
        np.tile(trace.lines, iterations),
        np.tile(trace.arrays, iterations),
        np.tile(trace.threads, iterations),
        trace.layout,
        np.tile(trace.is_prefetch, iterations),
        np.concatenate(reps),
    )


def spmv_thread_trace(
    matrix: CSRMatrix,
    layout: MemoryLayout,
    thread: int,
    row_begin: int,
    row_end: int,
) -> MemoryTrace:
    """Trace of one thread executing rows ``[row_begin, row_end)``."""
    if not 0 <= row_begin <= row_end <= matrix.num_rows:
        raise ValueError("invalid row range")
    num_rows = row_end - row_begin
    if num_rows == 0:
        empty = np.empty(0, dtype=np.int64)
        return MemoryTrace(empty, empty, empty, layout)
    rows = np.arange(row_begin, row_end, dtype=np.int64)
    lengths = matrix.row_lengths[rows]
    nnz = int(lengths.sum())
    n = 2 * num_rows + 3 * nnz + 1

    lines = np.empty(n, dtype=np.int64)
    arrays = np.empty(n, dtype=np.int8)

    # per-row segment offsets: rowptr ref, 3 refs per nonzero, y ref
    seg = 2 + 3 * lengths
    row_off = np.zeros(num_rows, dtype=np.int64)
    np.cumsum(seg[:-1], out=row_off[1:])

    rowptr_pos = row_off
    y_pos = row_off + 1 + 3 * lengths

    lines[rowptr_pos] = layout.lines_of("rowptr", rows)
    arrays[rowptr_pos] = ROWPTR
    lines[y_pos] = layout.lines_of("y", rows)
    arrays[y_pos] = Y

    if nnz:
        first_nnz = int(matrix.rowptr[row_begin])
        nnz_idx = np.arange(first_nnz, first_nnz + nnz, dtype=np.int64)
        local = np.arange(nnz, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(lengths[:-1]))), lengths
        )
        base = np.repeat(row_off, lengths) + 1 + 3 * local
        lines[base] = layout.lines_of("values", nnz_idx)
        arrays[base] = VALUES
        lines[base + 1] = layout.lines_of("colidx", nnz_idx)
        arrays[base + 1] = COLIDX
        lines[base + 2] = layout.lines_of("x", matrix.colidx[nnz_idx])
        arrays[base + 2] = X

    # trailing access to the final row bound (rowptr[row_end])
    lines[-1] = layout.lines_of("rowptr", np.array([row_end]))[0]
    arrays[-1] = ROWPTR

    threads = np.full(n, thread, dtype=np.int32)
    return MemoryTrace(lines, arrays, threads, layout)


def spmv_trace(
    matrix: CSRMatrix,
    layout: MemoryLayout | None = None,
    schedule: RowSchedule | None = None,
    line_size: int = 256,
) -> list[MemoryTrace]:
    """Per-thread traces of a (possibly parallel) SpMV execution.

    With no schedule the whole matrix runs on a single thread.  Each entry
    is one thread's references in program order; interleave them with
    :func:`repro.parallel.interleave.interleave` to model a shared cache.
    """
    if layout is None:
        layout = MemoryLayout.for_matrix(matrix, line_size)
    if schedule is None:
        schedule = static_schedule(matrix, 1)
    return [
        spmv_thread_trace(matrix, layout, t, *schedule.rows_of(t))
        for t in range(schedule.num_threads)
    ]


def x_only_trace(
    matrix: CSRMatrix,
    layout: MemoryLayout | None = None,
    schedule: RowSchedule | None = None,
    line_size: int = 256,
) -> list[MemoryTrace]:
    """Per-thread traces of only the x-vector references (method B input).

    The x access pattern is fully determined by ``colidx`` in row order;
    this is the reduced trace of paper Section 3.2.2.
    """
    if layout is None:
        layout = MemoryLayout.for_matrix(matrix, line_size)
    if schedule is None:
        schedule = static_schedule(matrix, 1)
    traces = []
    for t in range(schedule.num_threads):
        r0, r1 = schedule.rows_of(t)
        lo, hi = int(matrix.rowptr[r0]), int(matrix.rowptr[r1])
        cols = matrix.colidx[lo:hi]
        lines = layout.lines_of("x", cols)
        arrays = np.full(lines.shape[0], X, dtype=np.int8)
        threads = np.full(lines.shape[0], t, dtype=np.int32)
        traces.append(MemoryTrace(lines, arrays, threads, layout))
    return traces
