"""Continuous accuracy audit of cheap-tier fidelity-ladder answers.

The fidelity ladder's value proposition is *calibrated* error bounds:
tier-0/1 answers claim to be within a per-class floored relative error
of the exact tier-2 pass.  This module turns that offline calibration
into a live, falsifiable SLO: the daemon shadow-samples a deterministic
seeded fraction of delivered tier-0/1 answers, re-answers them at tier 2
off the hot path (on the same fork pool, only when it is idle), and
records the **observed** error into per-class/per-tier quantile
sketches.  The sketches export as ``repro_audit_observed_error`` with
``class``/``tier``/``quantile`` labels, every sample whose error exceeds
its calibrated bound increments ``repro_audit_bound_violations_total``,
and ``/healthz`` flips ``"accuracy": "degraded"`` when an observed p99
crosses the bound — drift in the matrix mix becomes a pager, not a
postmortem.

Everything here is service-agnostic plumbing (sampling decision, bounded
backlog, sketches, counters, snapshot shape); the service layer owns the
hook (where fresh tier-0/1 answers are delivered) and the background
loop that drains the backlog through the pool.

Sampling is deterministic: a request key is sampled iff
``sha256("<seed>:<key>")`` — scaled to [0, 1) — falls below the rate, so
replays and multi-replica runs agree on which keys are audited.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque

from .histogram import LatencyHistogram

#: floored-relative-error bucket bounds of the observed-error sketches
#: (top bound matches the largest calibrated class bound, 7.0)
ERROR_BUCKETS = (0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                 0.15, 0.25, 0.4, 0.65, 1.0, 2.0, 4.0, 7.0)

#: quantiles exported per (class, tier) sketch
AUDIT_QUANTILES = ("p50", "p95", "p99")


def sample_fraction(seed: int, key: str) -> float:
    """Deterministic uniform-[0,1) hash of ``(seed, key)``."""
    digest = hashlib.sha256(f"{seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def compare_results(
    endpoint: str,
    low: dict,
    reference: dict,
    floor: float,
    classify_policy,
) -> list[tuple[str, float]]:
    """Per-policy ``(class, floored relative error)`` of a cheap answer.

    ``low`` and ``reference`` are the wire result payloads of the same
    task answered at a cheap tier and at tier 2; ``floor`` is the
    matrix's streaming line count (the calibration metric's denominator
    floor); ``classify_policy`` maps a canonical policy dict to its
    paper-class value (the class depends on the way split, so each
    policy is scored under its own class).  Policies present in only one
    payload are ignored — they cannot be compared.
    """
    if endpoint == "predict":
        pairs = _match_by_policy(
            low.get("predictions", ()), reference.get("predictions", ()),
            miss_field="l2_misses",
        )
    elif endpoint == "advise":
        pairs = _match_by_policy(
            low.get("candidates", ()), reference.get("candidates", ()),
            miss_field="predicted_l2_misses",
        )
    else:  # classify is closed-form exact at every tier
        return []
    out = []
    for policy, low_misses, ref_misses in pairs:
        error = abs(low_misses - ref_misses) / max(ref_misses, floor, 1.0)
        out.append((classify_policy(policy), error))
    return out


def _match_by_policy(low_entries, ref_entries, miss_field: str):
    def keyed(entries):
        table = {}
        for entry in entries:
            if not isinstance(entry, dict):
                continue
            policy = entry.get("policy")
            misses = entry.get(miss_field)
            if isinstance(policy, dict) and isinstance(misses, (int, float)):
                # canonical-JSON key: policy dicts hold lists (way arrays),
                # so a sorted-items tuple would be unhashable
                key = json.dumps(policy, sort_keys=True)
                table[key] = (policy, float(misses))
        return table

    low_table, ref_table = keyed(low_entries), keyed(ref_entries)
    return [
        (low_table[key][0], low_table[key][1], ref_table[key][1])
        for key in low_table
        if key in ref_table
    ]


class AccuracyAuditor:
    """Sampling decision, bounded backlog, and per-(class, tier) sketches."""

    def __init__(
        self,
        rate: float,
        seed: int = 0,
        budget_seconds: float | None = None,
        backlog_limit: int = 256,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("audit rate must be in [0, 1]")
        if backlog_limit < 1:
            raise ValueError("backlog_limit must be positive")
        if budget_seconds is not None and budget_seconds <= 0:
            raise ValueError("budget_seconds must be positive")
        self.rate = rate
        self.seed = seed
        self.budget_seconds = budget_seconds
        self.backlog_limit = backlog_limit
        self._lock = threading.Lock()
        self._backlog: deque[dict] = deque()
        self._sketches: dict[tuple[str, int], LatencyHistogram] = {}
        self._bounds: dict[tuple[str, int], float] = {}
        self._samples: dict[tuple[str, int], int] = {}
        self._violations: dict[tuple[str, int], int] = {}
        self.sampled = 0
        self.completed = 0
        self.dropped = 0
        self.failed = 0
        self.budget_spent_seconds = 0.0

    # -- sampling + backlog ---------------------------------------------
    def should_sample(self, key: str) -> bool:
        return self.rate > 0.0 and sample_fraction(self.seed, key) < self.rate

    def offer(self, item: dict) -> bool:
        """Queue one sampled answer for auditing; False when shed."""
        with self._lock:
            if self.budget_exhausted or len(self._backlog) >= self.backlog_limit:
                self.dropped += 1
                return False
            self._backlog.append(item)
            self.sampled += 1
            return True

    def pop(self) -> dict | None:
        with self._lock:
            return self._backlog.popleft() if self._backlog else None

    @property
    def backlog(self) -> int:
        return len(self._backlog)

    # -- accounting ------------------------------------------------------
    def spend(self, seconds: float) -> None:
        with self._lock:
            self.budget_spent_seconds += seconds

    @property
    def budget_exhausted(self) -> bool:
        return (self.budget_seconds is not None
                and self.budget_spent_seconds >= self.budget_seconds)

    def record(self, cls_value: str, tier: int, error: float,
               bound: float) -> None:
        """One observed (class, tier) error against its calibrated bound."""
        key = (cls_value, tier)
        with self._lock:
            sketch = self._sketches.get(key)
            if sketch is None:
                sketch = self._sketches[key] = LatencyHistogram(ERROR_BUCKETS)
            sketch.observe(error)
            self._bounds[key] = bound
            self._samples[key] = self._samples.get(key, 0) + 1
            if error > bound:
                self._violations[key] = self._violations.get(key, 0) + 1

    def record_failure(self) -> None:
        with self._lock:
            self.failed += 1

    def finish(self) -> None:
        with self._lock:
            self.completed += 1

    # -- exposition ------------------------------------------------------
    def status(self) -> str:
        """``"degraded"`` when any observed p99 exceeds its bound."""
        with self._lock:
            return self._status_locked()

    def violations_total(self) -> int:
        with self._lock:
            return sum(self._violations.values())

    def snapshot(self) -> dict:
        """The ``/metrics`` ``audit`` section (JSON form)."""
        with self._lock:
            observed: dict = {}
            for (cls_value, tier), sketch in sorted(self._sketches.items()):
                per_tier = observed.setdefault(cls_value, {})
                per_tier[str(tier)] = {
                    "count": sketch.total,
                    "bound": self._bounds[(cls_value, tier)],
                    "violations": self._violations.get((cls_value, tier), 0),
                    "quantiles": {
                        "p50": sketch.quantile(0.50),
                        "p95": sketch.quantile(0.95),
                        "p99": sketch.quantile(0.99),
                    },
                }
            return {
                "rate": self.rate,
                "seed": self.seed,
                "sampled": self.sampled,
                "completed": self.completed,
                "failed": self.failed,
                "dropped": self.dropped,
                "backlog": len(self._backlog),
                "budget_seconds": self.budget_seconds,
                "budget_spent_seconds": self.budget_spent_seconds,
                "violations_total": sum(self._violations.values()),
                "status": self._status_locked(),
                "observed_error": observed,
            }

    def _status_locked(self) -> str:
        # caller holds self._lock
        for key, sketch in self._sketches.items():
            if sketch.total and sketch.quantile(0.99) > self._bounds[key]:
                return "degraded"
        return "ok"
