"""Prometheus text exposition of the service metrics snapshot.

:func:`render_prometheus` turns the JSON snapshot of
:class:`repro.service.metrics.ServiceMetrics` into the Prometheus text
format (version 0.0.4): one ``# HELP``/``# TYPE`` pair per metric family,
cumulative ``_bucket{le=...}`` histogram series reusing the existing
``le``-convention buckets, counters suffixed ``_total``.

:func:`parse_prometheus_text` is the matching strict reader used by the
tests (and usable against any exposition text): it validates line syntax,
label quoting, histogram monotonicity and ``_count`` == ``+Inf`` bucket
consistency, raising ``ValueError`` on the first violation.
"""

from __future__ import annotations

import re

_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))$"
)
_LABEL = re.compile(r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def _escape(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _labels(**labels) -> str:
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in labels.items())
    return f"{{{inner}}}" if inner else ""


class _Writer:
    def __init__(self, prefix: str = "repro") -> None:
        self.prefix = prefix
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> str:
        full = f"{self.prefix}_{name}"
        self.lines.append(f"# HELP {full} {help_text}")
        self.lines.append(f"# TYPE {full} {kind}")
        return full

    def sample(self, name: str, value, **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_format_value(value)}")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def render_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """The ``/metrics`` snapshot in Prometheus text-exposition format."""
    w = _Writer(prefix)

    name = w.family("uptime_seconds", "gauge", "Daemon uptime.")
    w.sample(name, float(snapshot.get("uptime_seconds", 0.0)))

    name = w.family("requests_total", "counter",
                    "Terminal request count by endpoint and status.")
    for endpoint, statuses in sorted(snapshot.get("requests", {}).items()):
        for status, count in sorted(statuses.items()):
            w.sample(name, count, endpoint=endpoint, status=status)

    name = w.family("evaluations_total", "counter",
                    "Model evaluations actually performed.")
    for endpoint, count in sorted(snapshot.get("evaluations", {}).items()):
        w.sample(name, count, endpoint=endpoint)

    name = w.family("coalesced_total", "counter",
                    "Requests that piggybacked on an in-flight evaluation.")
    for endpoint, count in sorted(snapshot.get("coalesced", {}).items()):
        w.sample(name, count, endpoint=endpoint)

    name = w.family("cache_served_total", "counter",
                    "Requests served from a cache tier.")
    for endpoint, tiers in sorted(snapshot.get("cache_served", {}).items()):
        for tier, count in sorted(tiers.items()):
            w.sample(name, count, endpoint=endpoint, tier=tier)

    name = w.family("degraded_total", "counter",
                    "Requests answered from the analytic degraded path.")
    for endpoint, reasons in sorted(snapshot.get("degraded", {}).items()):
        for reason, count in sorted(reasons.items()):
            w.sample(name, count, endpoint=endpoint, reason=reason)

    ladder = snapshot.get("ladder", {})
    name = w.family("ladder_answers_total", "counter",
                    "Fidelity-ladder answers by endpoint and delivered tier.")
    for endpoint, tiers in sorted(ladder.get("answers", {}).items()):
        for tier, count in sorted(tiers.items()):
            w.sample(name, count, endpoint=endpoint, tier=tier)
    escalations = ladder.get("escalations", {})
    if escalations:
        name = w.family("ladder_escalations", "histogram",
                        "Tiers climbed per fidelity-ladder answer.")
        cumulative, total = 0, 0
        for bound in ("0", "1", "2", "3"):
            cumulative += int(escalations.get(bound, 0))
            w.sample(f"{name}_bucket", cumulative, le=bound)
        count = sum(int(v) for v in escalations.values())
        w.sample(f"{name}_bucket", count, le="+Inf")
        total = sum(int(k) * int(v) for k, v in escalations.items())
        w.sample(f"{name}_sum", float(total))
        w.sample(f"{name}_count", count)

    audit = snapshot.get("audit")
    if audit:
        name = w.family("audit_observed_error", "gauge",
                        "Observed floored relative error of audited "
                        "cheap-tier answers vs tier 2, by class, tier "
                        "and quantile.")
        for cls_value, tiers in sorted(audit.get("observed_error", {}).items()):
            for tier, entry in sorted(tiers.items()):
                for quantile, value in sorted(
                    entry.get("quantiles", {}).items()
                ):
                    w.sample(name, float(value), **{
                        "class": cls_value, "tier": tier,
                        "quantile": quantile,
                    })
        name = w.family("audit_samples_total", "counter",
                        "Audited answers recorded, by class and tier.")
        for cls_value, tiers in sorted(audit.get("observed_error", {}).items()):
            for tier, entry in sorted(tiers.items()):
                w.sample(name, entry.get("count", 0),
                         **{"class": cls_value, "tier": tier})
        name = w.family("audit_bound_violations_total", "counter",
                        "Audited answers whose observed error exceeded "
                        "the calibrated bound, by class and tier.")
        for cls_value, tiers in sorted(audit.get("observed_error", {}).items()):
            for tier, entry in sorted(tiers.items()):
                w.sample(name, entry.get("violations", 0),
                         **{"class": cls_value, "tier": tier})
        name = w.family("audit_backlog", "gauge",
                        "Sampled answers waiting for an off-path tier-2 "
                        "audit evaluation.")
        w.sample(name, audit.get("backlog", 0))
        name = w.family("audit_dropped_total", "counter",
                        "Sampled answers shed (backlog full or audit "
                        "budget exhausted).")
        w.sample(name, audit.get("dropped", 0))
        name = w.family("audit_budget_spent_seconds_total", "counter",
                        "Cumulative evaluation seconds spent on audit "
                        "re-answers.")
        w.sample(name, float(audit.get("budget_spent_seconds", 0.0)))

    optimize = snapshot.get("optimize", {})
    name = w.family("optimize_strategies_total", "counter",
                    "Reordering-search candidate outcomes by strategy "
                    "label and terminal status.")
    for label, statuses in sorted(optimize.get("strategies", {}).items()):
        for status, count in sorted(statuses.items()):
            w.sample(name, count, strategy=label, status=status)
    improvement = optimize.get("improvement", {})
    if improvement.get("count"):
        name = w.family("optimize_predicted_improvement", "histogram",
                        "Confirmed predicted L2-miss improvement per "
                        "fresh reordering search (fraction of baseline).")
        for bound, cumulative in improvement.get("buckets", {}).items():
            w.sample(f"{name}_bucket", cumulative, le=bound)
        w.sample(f"{name}_sum", float(improvement.get("sum_seconds", 0.0)))
        w.sample(f"{name}_count", improvement.get("count", 0))

    delta = snapshot.get("delta", {})
    name = w.family("delta_applied_total", "counter",
                    "Delta evaluations answered without a full stack "
                    "pass, by endpoint and path.")
    for endpoint, paths in sorted(delta.get("applied", {}).items()):
        for path, count in sorted(paths.items()):
            w.sample(name, count, endpoint=endpoint, path=path)
    name = w.family("delta_fallback_total", "counter",
                    "Delta evaluations that fell back to full "
                    "re-evaluation, by endpoint and reason.")
    for endpoint, reasons in sorted(delta.get("fallback", {}).items()):
        for reason, count in sorted(reasons.items()):
            w.sample(name, count, endpoint=endpoint, reason=reason)
    drift = delta.get("drift", {})
    if drift.get("count"):
        name = w.family("delta_drift", "histogram",
                        "Accumulated edit fraction (edits over base "
                        "nonzeros) per delta evaluation.")
        for bound, cumulative in drift.get("buckets", {}).items():
            w.sample(f"{name}_bucket", cumulative, le=bound)
        w.sample(f"{name}_sum", float(drift.get("sum_seconds", 0.0)))
        w.sample(f"{name}_count", drift.get("count", 0))

    name = w.family("peer_fill_total", "counter",
                    "Warm-cache fills attempted against a peer replica, "
                    "by outcome.")
    for outcome, count in sorted(snapshot.get("peer_fill", {}).items()):
        w.sample(name, count, outcome=outcome)

    name = w.family("cache_peek_total", "counter",
                    "/cache/peek requests served to peer replicas, "
                    "by outcome.")
    for outcome, count in sorted(snapshot.get("cache_peek", {}).items()):
        w.sample(name, count, outcome=outcome)

    gc = snapshot.get("gc", {})
    name = w.family("cache_gc_sweeps_total", "counter",
                    "Disk-cache GC sweeps run by the daemon.")
    w.sample(name, gc.get("sweeps", 0))
    name = w.family("cache_gc_deleted_total", "counter",
                    "Disk-cache entries deleted by GC.")
    w.sample(name, gc.get("deleted", 0))
    name = w.family("cache_gc_deleted_bytes_total", "counter",
                    "Disk-cache bytes reclaimed by GC.")
    w.sample(name, gc.get("deleted_bytes", 0))
    name = w.family("cache_gc_quarantined", "gauge",
                    "Quarantine files present and preserved at the last "
                    "GC sweep.")
    w.sample(name, gc.get("quarantined", 0))

    name = w.family("faults_injected_total", "counter",
                    "Injected faults fired, by site and kind.")
    for site_kind, count in sorted(snapshot.get("faults_injected", {}).items()):
        site, _, kind = site_kind.rpartition(":")
        w.sample(name, count, site=site, kind=kind)

    breakers = snapshot.get("breakers", {})
    if breakers:
        from ..resilience.breaker import STATE_VALUES

        name = w.family("breaker_state", "gauge",
                        "Circuit-breaker state per endpoint "
                        "(0=closed, 1=open, 2=half_open).")
        for endpoint, breaker in sorted(breakers.items()):
            w.sample(name, STATE_VALUES.get(breaker.get("state"), 0),
                     endpoint=endpoint)
        name = w.family("breaker_events_total", "counter",
                        "Circuit-breaker accounting events per endpoint.")
        for endpoint, breaker in sorted(breakers.items()):
            for event in ("successes", "failures", "rejections"):
                w.sample(name, breaker.get(event, 0),
                         endpoint=endpoint, event=event)
        name = w.family("breaker_transitions_total", "counter",
                        "Circuit-breaker state transitions per endpoint.")
        for endpoint, breaker in sorted(breakers.items()):
            for transition, count in sorted(
                breaker.get("transitions", {}).items()
            ):
                w.sample(name, count, endpoint=endpoint,
                         transition=transition)

    name = w.family("evaluation_phase_seconds_total", "counter",
                    "Cumulative model-evaluation self time by phase span.")
    for endpoint, phases in sorted(
        snapshot.get("evaluation_phase_seconds", {}).items()
    ):
        for phase, seconds in sorted(phases.items()):
            w.sample(name, float(seconds), endpoint=endpoint, phase=phase)

    name = w.family("request_latency_seconds", "histogram",
                    "Request latency by endpoint.")
    for endpoint, hist in sorted(snapshot.get("latency_seconds", {}).items()):
        for bound, cumulative in hist.get("buckets", {}).items():
            w.sample(f"{name}_bucket", cumulative, endpoint=endpoint, le=bound)
        w.sample(f"{name}_sum", float(hist.get("sum_seconds", 0.0)),
                 endpoint=endpoint)
        w.sample(f"{name}_count", hist.get("count", 0), endpoint=endpoint)

    cache = snapshot.get("cache", {})
    memory = cache.get("memory", {})
    name = w.family("cache_memory_entries", "gauge", "Memory-tier entries.")
    w.sample(name, memory.get("entries", 0))
    name = w.family("cache_memory_bytes", "gauge", "Memory-tier resident bytes.")
    w.sample(name, memory.get("bytes", 0))
    name = w.family("cache_tier_events_total", "counter",
                    "Cache events (hits/misses/evictions/expirations) by tier.")
    for event in ("hits", "misses", "evictions", "expirations"):
        w.sample(name, memory.get(event, 0), tier="memory", event=event)
    disk = cache.get("disk", {})
    for event in ("hits", "misses", "corrupt"):
        w.sample(name, disk.get(event, 0), tier="disk", event=event)

    queue = snapshot.get("queue", {})
    name = w.family("queue_depth", "gauge", "Requests waiting for a worker slot.")
    w.sample(name, queue.get("depth", 0))
    name = w.family("queue_peak", "gauge", "Peak queue depth.")
    w.sample(name, queue.get("peak", 0))

    workers = snapshot.get("workers", {})
    name = w.family("workers_busy", "gauge", "Busy pool workers.")
    w.sample(name, workers.get("busy", 0))
    name = w.family("workers_jobs", "gauge", "Configured pool size.")
    w.sample(name, workers.get("jobs", 0))
    name = w.family("worker_restarts_total", "counter",
                    "Pool rebuilds after a worker death.")
    w.sample(name, workers.get("restarts", 0))
    name = w.family("request_timeouts_total", "counter",
                    "Evaluations abandoned on timeout.")
    w.sample(name, workers.get("timeouts", 0))

    return "\n".join(w.lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Strictly parse exposition text into ``{name: [(labels, value)]}``.

    Raises ``ValueError`` on malformed lines, labels, duplicate TYPE
    declarations, samples without a TYPE, non-monotonic histogram buckets,
    or ``_count`` disagreeing with the ``+Inf`` bucket.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    types: dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _NAME.match(parts[2]) or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE line {line!r}")
            if parts[2] in types:
                raise ValueError(f"line {lineno}: duplicate TYPE for {parts[2]}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            raise ValueError(f"line {lineno}: unknown comment {line!r}")
        match = _SAMPLE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and family not in types:
            raise ValueError(f"line {lineno}: sample {name!r} has no TYPE")
        labels: dict = {}
        raw = match.group("labels")
        if raw:
            for part in _split_labels(raw, lineno):
                label = _LABEL.match(part)
                if not label:
                    raise ValueError(f"line {lineno}: malformed label {part!r}")
                labels[label.group("key")] = label.group("value")
        samples.setdefault(name, []).append((labels, float(match.group("value"))))
    _check_histograms(samples, types)
    return samples


def _split_labels(raw: str, lineno: int) -> list[str]:
    parts, depth_quote, current = [], False, ""
    for ch in raw:
        if ch == '"' and not current.endswith("\\"):
            depth_quote = not depth_quote
        if ch == "," and not depth_quote:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current:
        parts.append(current)
    if depth_quote:
        raise ValueError(f"line {lineno}: unbalanced quotes in labels")
    return parts


def _check_histograms(
    samples: dict[str, list[tuple[dict, float]]], types: dict[str, str]
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        series: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in samples.get(f"{family}_bucket", []):
            if "le" not in labels:
                raise ValueError(f"{family}_bucket sample without le label")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            bound = float("inf") if labels["le"] == "+Inf" else float(labels["le"])
            series.setdefault(key, []).append((bound, value))
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in samples.get(f"{family}_count", [])
        }
        for key, buckets in series.items():
            ordered = sorted(buckets)
            values = [v for _, v in ordered]
            if values != sorted(values):
                raise ValueError(f"{family}{dict(key)}: non-monotonic buckets")
            if ordered[-1][0] != float("inf"):
                raise ValueError(f"{family}{dict(key)}: missing +Inf bucket")
            if key in counts and counts[key] != ordered[-1][1]:
                raise ValueError(
                    f"{family}{dict(key)}: _count != +Inf bucket"
                )
