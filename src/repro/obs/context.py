"""Distributed trace context (W3C-traceparent-style, stdlib-only).

A :class:`TraceContext` is the pair ``(trace_id, span_id)`` that ties the
fragments of one logical request together across processes: the gateway
mints it, forwards it to a replica in the JSON envelope (and the
``X-Repro-Trace`` header for transports that only see headers), the
replica hands it to its fork-pool worker inside the task, and every hop
logs and labels its spans with the shared ``trace_id`` while minting a
**fresh** ``span_id`` of its own (a reused span id would make two
different spans indistinguishable in the assembled tree).

The wire form follows the W3C ``traceparent`` shape —
``00-<32 hex trace id>-<16 hex span id>-01`` — so the header is readable
by standard tooling, without importing any tracing library.

Identifiers come from :func:`os.urandom`, which is fork-safe (it is a
``getrandom`` syscall, not a userspace RNG stream that both sides of a
``fork`` would replay identically).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

#: HTTP header carrying the serialized context between processes.
TRACE_HEADER = "X-Repro-Trace"

_TRACE_ID_BYTES = 16  # 32 hex chars
_SPAN_ID_BYTES = 8    # 16 hex chars
_HEX = set("0123456789abcdef")


def new_trace_id() -> str:
    """A fresh 32-hex-character trace id."""
    return os.urandom(_TRACE_ID_BYTES).hex()


def new_span_id() -> str:
    """A fresh 16-hex-character span id."""
    return os.urandom(_SPAN_ID_BYTES).hex()


def _is_hex(value: object, length: int) -> bool:
    return (
        isinstance(value, str)
        and len(value) == length
        and set(value) <= _HEX
        and value != "0" * length  # all-zero ids are invalid per W3C
    )


@dataclass(frozen=True)
class TraceContext:
    """One hop's identity inside a distributed trace."""

    trace_id: str
    span_id: str

    @classmethod
    def new(cls) -> "TraceContext":
        return cls(trace_id=new_trace_id(), span_id=new_span_id())

    def child(self) -> "TraceContext":
        """Same trace, fresh span id — what each downstream hop must use."""
        return TraceContext(trace_id=self.trace_id, span_id=new_span_id())

    # -- JSON envelope form --------------------------------------------
    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, payload: object) -> "TraceContext | None":
        """Parse the envelope form; None when malformed (never raises)."""
        if not isinstance(payload, dict):
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not _is_hex(trace_id, 2 * _TRACE_ID_BYTES):
            return None
        if not _is_hex(span_id, 2 * _SPAN_ID_BYTES):
            return None
        return cls(trace_id=trace_id, span_id=span_id)

    # -- header form ----------------------------------------------------
    def to_header(self) -> str:
        return f"00-{self.trace_id}-{self.span_id}-01"

    @classmethod
    def from_header(cls, value: object) -> "TraceContext | None":
        """Parse an ``X-Repro-Trace`` value; None when malformed."""
        if not isinstance(value, str):
            return None
        parts = value.strip().split("-")
        if len(parts) != 4 or parts[0] != "00":
            return None
        return cls.from_dict({"trace_id": parts[1], "span_id": parts[2]})


def validate_context_dict(payload: object) -> list[str]:
    """Problems with a ``trace_context`` request field; empty when valid."""
    if not isinstance(payload, dict):
        return ["trace_context must be an object"]
    problems = []
    if not _is_hex(payload.get("trace_id"), 2 * _TRACE_ID_BYTES):
        problems.append("trace_context.trace_id must be 32 lowercase hex chars")
    if not _is_hex(payload.get("span_id"), 2 * _SPAN_ID_BYTES):
        problems.append("trace_context.span_id must be 16 lowercase hex chars")
    return problems
