"""Structured JSON-lines event log (``repro.obs.events/v1``).

One append-only file correlates everything a cluster does to one request
by ``trace_id``: the gateway's route and failover hops, the replica's
terminal request record, breaker transitions, membership changes, GC
sweeps, fault injections and the fork-pool worker's evaluation — each a
single JSON object per line::

    {"schema": "repro.obs.events/v1", "ts": 1754640000.123, "seq": 7,
     "event": "request", "source": {"role": "service", "pid": 4242},
     "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736",
     "fields": {"endpoint": "advise", "status": "ok", "seconds": 0.018}}

Like :mod:`repro.obs.tracer` and :mod:`repro.resilience.faults`, the log
installs **ambient and process-local**: :func:`emit` is a no-op until a
daemon installs an :class:`EventLog`, so instrumented code paths cost
one global read when logging is off.  Fork-pool workers inherit the
ambient log; on first emit in a child the file is reopened in append
mode (``O_APPEND`` makes small line writes atomic between processes), so
gateway, replica and worker entries interleave safely in one file while
sharing the request's ``trace_id``.

Rotation is by byte budget and owner-only: when the creating process
would push the file past ``max_bytes`` it renames the file to
``<path>.1`` (replacing any previous rotation) and starts fresh.
Children never rotate — two processes rotating the same file would race.

Validate logs with ``python -m repro.obs.events --validate LOG...``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import threading
import time
from pathlib import Path

EVENT_SCHEMA_ID = "repro.obs.events/v1"

#: default rotation budget: generous for smoke runs, bounded for daemons
DEFAULT_MAX_BYTES = 16 * 1024 * 1024

_SCALAR = (str, int, float, bool, type(None))


class EventLog:
    """Append-only, byte-budget-rotated JSON-lines event sink."""

    def __init__(
        self,
        path: str | Path,
        max_bytes: int = DEFAULT_MAX_BYTES,
        role: str = "service",
    ) -> None:
        if max_bytes < 4096:
            raise ValueError("max_bytes must be at least 4096")
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.role = role
        self._lock = threading.Lock()
        self._owner_pid = os.getpid()
        self._pid = os.getpid()
        self._seq = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")

    # -- writing --------------------------------------------------------
    def emit(self, event: str, trace_id: str | None = None, **fields) -> None:
        """Append one event line; never raises into the caller."""
        entry = {
            "schema": EVENT_SCHEMA_ID,
            "ts": time.time(),
            "event": event,
            "source": {"role": self.role, "pid": os.getpid()},
            "fields": {
                key: value if isinstance(value, _SCALAR) else repr(value)
                for key, value in fields.items()
            },
        }
        if trace_id is not None:
            entry["trace_id"] = trace_id
        with self._lock:
            try:
                self._reopen_if_forked()
                entry["seq"] = self._seq
                self._seq += 1
                line = json.dumps(entry, sort_keys=True)
                self._maybe_rotate(len(line) + 1)
                self._fh.write(line + "\n")
                self._fh.flush()
            except (OSError, ValueError):
                # a full disk or a closed log must not fail the request
                pass

    def _reopen_if_forked(self) -> None:
        """A forked child shares the parent's buffered file object; give
        it a fresh append-mode handle (and its own sequence) instead."""
        pid = os.getpid()
        if pid == self._pid:
            return
        self._pid = pid
        self._seq = 0
        self._fh = open(self.path, "a", encoding="utf-8")

    def _maybe_rotate(self, incoming: int) -> None:
        """Owner-only rotation to ``<path>.1`` when the budget is hit."""
        if os.getpid() != self._owner_pid:
            return
        try:
            size = self._fh.tell()
        except (OSError, ValueError):
            return
        if size + incoming <= self.max_bytes or size == 0:
            return
        self._fh.close()
        with contextlib.suppress(OSError):
            os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        self._fh = open(self.path, "a", encoding="utf-8")

    def close(self) -> None:
        with self._lock, contextlib.suppress(OSError, ValueError):
            self._fh.close()


# ----------------------------------------------------------------------
# process-local ambient log (mirrors repro.resilience.faults' pattern)
# ----------------------------------------------------------------------

_ambient: EventLog | None = None


def get_log() -> EventLog | None:
    """The installed ambient log, or None when event logging is off."""
    return _ambient


def install(log: EventLog | None) -> EventLog | None:
    """Install (or, with None, remove) the ambient log; returns the old
    one.  Inherited across ``fork`` by pool workers."""
    global _ambient
    previous = _ambient
    _ambient = log
    return previous


@contextlib.contextmanager
def installed(log: EventLog | None):
    """Ambient-install a log for the duration of a block."""
    previous = install(log)
    try:
        yield log
    finally:
        install(previous)


def emit(event: str, trace_id: str | None = None, **fields) -> None:
    """Emit on the ambient log; free no-op when none is installed."""
    log = _ambient
    if log is not None:
        log.emit(event, trace_id=trace_id, **fields)


# ----------------------------------------------------------------------
# validation (hand-rolled schema, like repro.obs.schema)
# ----------------------------------------------------------------------


def validate_entry(entry: object, path: str = "entry") -> list[str]:
    """Problems with one parsed event entry; empty when valid."""
    if not isinstance(entry, dict):
        return [f"{path}: must be a JSON object"]
    problems: list[str] = []
    if entry.get("schema") != EVENT_SCHEMA_ID:
        problems.append(
            f"{path}.schema: expected {EVENT_SCHEMA_ID!r}, "
            f"got {entry.get('schema')!r}"
        )
    ts = entry.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
        problems.append(f"{path}.ts: must be a non-negative number")
    seq = entry.get("seq")
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
        problems.append(f"{path}.seq: must be a non-negative integer")
    event = entry.get("event")
    if not isinstance(event, str) or not event:
        problems.append(f"{path}.event: must be a non-empty string")
    source = entry.get("source")
    if not isinstance(source, dict):
        problems.append(f"{path}.source: must be an object")
    else:
        if not isinstance(source.get("role"), str) or not source.get("role"):
            problems.append(f"{path}.source.role: must be a non-empty string")
        pid = source.get("pid")
        if not isinstance(pid, int) or isinstance(pid, bool) or pid < 1:
            problems.append(f"{path}.source.pid: must be a positive integer")
    trace_id = entry.get("trace_id")
    if trace_id is not None and (
        not isinstance(trace_id, str) or not trace_id
    ):
        problems.append(f"{path}.trace_id: must be a non-empty string or absent")
    fields = entry.get("fields")
    if not isinstance(fields, dict):
        problems.append(f"{path}.fields: must be an object")
    else:
        for key, value in fields.items():
            if not isinstance(value, _SCALAR):
                problems.append(f"{path}.fields[{key!r}]: must be a JSON scalar")
    return problems


def validate_log_text(text: str) -> tuple[list[dict], list[str]]:
    """Parse + validate a whole log; returns ``(entries, problems)``."""
    entries: list[dict] = []
    problems: list[str] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not valid JSON ({exc})")
            continue
        entry_problems = validate_entry(entry, path=f"line {lineno}")
        problems.extend(entry_problems)
        if not entry_problems:
            entries.append(entry)
    return entries, problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate repro.obs.events/v1 JSON-lines event logs."
    )
    parser.add_argument("--validate", action="store_true",
                        help="validate the given logs (the default action)")
    parser.add_argument("paths", nargs="+", help="event-log files to validate")
    args = parser.parse_args(argv)
    status = 0
    for path in args.paths:
        try:
            text = Path(path).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        entries, problems = validate_log_text(text)
        for problem in problems:
            print(f"{path}: invalid: {problem}", file=sys.stderr)
        if problems:
            status = 1
            continue
        kinds = sorted({entry["event"] for entry in entries})
        traces = {entry["trace_id"] for entry in entries
                  if entry.get("trace_id")}
        print(
            f"OK: {path} is a valid {EVENT_SCHEMA_ID} log "
            f"({len(entries)} entries, {len(kinds)} event kinds, "
            f"{len(traces)} trace ids)"
        )
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
