"""Text rendering of span trees: call tree plus self-time hot list.

:func:`render_report` is what ``python -m repro.experiments --trace``
prints: an indented tree (flamegraph read top-to-bottom) followed by a
table of span names sorted by aggregated exclusive time — the phase cost
breakdown the Method-A-vs-B overhead claims are defended with.
"""

from __future__ import annotations

from .tree import SpanNode, TraceTree, self_seconds


def _fmt_bytes(n: int) -> str:
    if n >= 2**20:
        return f"{n / 2**20:.1f}MiB"
    if n >= 2**10:
        return f"{n / 2**10:.1f}KiB"
    return f"{n}B"


def render_tree(tree: TraceTree, max_depth: int | None = None) -> str:
    """The span forest as an indented text tree."""
    lines: list[str] = []

    def walk(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        label = node.name
        if node.count > 1:
            label += f" x{node.count}"
        extras = []
        if node.attrs:
            extras.append(
                ",".join(f"{k}={v}" for k, v in sorted(node.attrs.items()))
            )
        if node.rss_delta_bytes:
            extras.append(f"+rss {_fmt_bytes(node.rss_delta_bytes)}")
        if node.mem_peak_bytes:
            extras.append(f"peak {_fmt_bytes(node.mem_peak_bytes)}")
        if node.counters:
            extras.append(
                " ".join(f"{k}:{v}" for k, v in sorted(node.counters.items()))
            )
        suffix = f"  [{'; '.join(extras)}]" if extras else ""
        lines.append(f"{'  ' * depth}{node.seconds:10.4f}s  {label}{suffix}")
        for child in node.children:
            walk(child, depth + 1)

    for root in tree.roots:
        walk(root, 0)
    return "\n".join(lines)


def render_self_times(tree: TraceTree, wall_seconds: float | None = None) -> str:
    """Span names sorted by aggregated exclusive (self) time."""
    self_by_name = tree.self_seconds_by_name()
    counts: dict[str, int] = {}
    totals: dict[str, float] = {}

    def walk(node: SpanNode) -> None:
        counts[node.name] = counts.get(node.name, 0) + node.count
        totals[node.name] = totals.get(node.name, 0.0) + node.seconds
        for child in node.children:
            walk(child)

    for root in tree.roots:
        walk(root)
    denominator = wall_seconds if wall_seconds else tree.total_seconds()
    header = f"{'span':<28} {'count':>7} {'total s':>10} {'self s':>10} {'self %':>7}"
    lines = [header, "-" * len(header)]
    for name in sorted(self_by_name, key=lambda n: self_by_name[n], reverse=True):
        share = 100.0 * self_by_name[name] / denominator if denominator else 0.0
        lines.append(
            f"{name:<28} {counts[name]:>7} {totals[name]:>10.4f} "
            f"{self_by_name[name]:>10.4f} {share:>6.1f}%"
        )
    covered = sum(self_by_name.values())
    if wall_seconds:
        lines.append(
            f"{'(spans cover)':<28} {'':>7} {'':>10} {covered:>10.4f} "
            f"{100.0 * covered / wall_seconds:>6.1f}%"
        )
    return "\n".join(lines)


def render_report(tree: TraceTree, wall_seconds: float | None = None) -> str:
    """Indented tree + self-time hot list (the ``--trace`` console output)."""
    parts = ["span tree:", render_tree(tree), "",
             "self time by span:", render_self_times(tree, wall_seconds)]
    return "\n".join(parts)
