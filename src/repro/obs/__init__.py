"""Unified tracing & profiling layer (``repro.obs``).

One stdlib-only subsystem answers "where did the time and memory go?"
for every part of the reproduction:

* :class:`Tracer` / :func:`span` — hierarchical spans over the model
  engines (trace build, stack passes, profile queries), the cache
  simulator, ``measure_matrix`` phases, pool workers and the advisor
  service.  A process-local ambient tracer keeps the instrumentation at
  zero cost when disabled (:func:`span` returns a shared no-op span).
* :class:`TraceTree` — serializable span forests that merge across
  processes: fork-pool workers ship their trees back with each record
  and the parent reassembles one deterministic tree per run.
* :mod:`repro.obs.report` — the ``--trace`` console report (indented
  tree + self-time hot list).
* :class:`LatencyHistogram` / :mod:`repro.obs.prometheus` — the metric
  primitives behind the service's ``/metrics`` (JSON and Prometheus
  text exposition).
* :mod:`repro.obs.schema` — structural validation of serialized traces
  (also a CLI: ``python -m repro.obs.schema trace.json``).
"""

from .audit import AccuracyAuditor, compare_results
from .context import TRACE_HEADER, TraceContext, new_span_id, new_trace_id
from .histogram import LATENCY_BUCKETS, LatencyHistogram
from .prometheus import parse_prometheus_text, render_prometheus
from .report import render_report, render_self_times, render_tree
from .traces import TraceBuffer
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    count,
    enabled,
    get_tracer,
    install,
    installed,
    peak_rss_bytes,
    span,
)
from .tree import SpanNode, TraceTree, self_seconds

# imported lazily so `python -m repro.obs.schema` / `python -m
# repro.obs.events` do not trip runpy's already-in-sys.modules warning
# (the CLIs live in the submodules)
_SCHEMA_EXPORTS = ("TRACE_SCHEMA_ID", "validate_trace_payload", "validate_tree")
_EVENTS_EXPORTS = ("EVENT_SCHEMA_ID", "EventLog", "validate_entry",
                   "validate_log_text")


def __getattr__(name: str):
    if name in _SCHEMA_EXPORTS:
        from . import schema

        return getattr(schema, name)
    if name in _EVENTS_EXPORTS:
        from . import events

        return getattr(events, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AccuracyAuditor",
    "EVENT_SCHEMA_ID",
    "EventLog",
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "NULL_SPAN",
    "Span",
    "SpanNode",
    "TRACE_HEADER",
    "TRACE_SCHEMA_ID",
    "TraceBuffer",
    "TraceContext",
    "TraceTree",
    "Tracer",
    "compare_results",
    "count",
    "enabled",
    "get_tracer",
    "install",
    "installed",
    "new_span_id",
    "new_trace_id",
    "parse_prometheus_text",
    "peak_rss_bytes",
    "render_prometheus",
    "render_report",
    "render_self_times",
    "render_tree",
    "self_seconds",
    "span",
    "validate_entry",
    "validate_log_text",
    "validate_trace_payload",
    "validate_tree",
]
