"""Unified tracing & profiling layer (``repro.obs``).

One stdlib-only subsystem answers "where did the time and memory go?"
for every part of the reproduction:

* :class:`Tracer` / :func:`span` — hierarchical spans over the model
  engines (trace build, stack passes, profile queries), the cache
  simulator, ``measure_matrix`` phases, pool workers and the advisor
  service.  A process-local ambient tracer keeps the instrumentation at
  zero cost when disabled (:func:`span` returns a shared no-op span).
* :class:`TraceTree` — serializable span forests that merge across
  processes: fork-pool workers ship their trees back with each record
  and the parent reassembles one deterministic tree per run.
* :mod:`repro.obs.report` — the ``--trace`` console report (indented
  tree + self-time hot list).
* :class:`LatencyHistogram` / :mod:`repro.obs.prometheus` — the metric
  primitives behind the service's ``/metrics`` (JSON and Prometheus
  text exposition).
* :mod:`repro.obs.schema` — structural validation of serialized traces
  (also a CLI: ``python -m repro.obs.schema trace.json``).
"""

from .histogram import LATENCY_BUCKETS, LatencyHistogram
from .prometheus import parse_prometheus_text, render_prometheus
from .report import render_report, render_self_times, render_tree
from .tracer import (
    NULL_SPAN,
    Span,
    Tracer,
    count,
    enabled,
    get_tracer,
    install,
    installed,
    peak_rss_bytes,
    span,
)
from .tree import SpanNode, TraceTree, self_seconds

# imported lazily so `python -m repro.obs.schema` does not trip runpy's
# already-in-sys.modules warning (the CLI lives in the submodule)
_SCHEMA_EXPORTS = ("TRACE_SCHEMA_ID", "validate_trace_payload", "validate_tree")


def __getattr__(name: str):
    if name in _SCHEMA_EXPORTS:
        from . import schema

        return getattr(schema, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "LATENCY_BUCKETS",
    "LatencyHistogram",
    "NULL_SPAN",
    "Span",
    "SpanNode",
    "TRACE_SCHEMA_ID",
    "TraceTree",
    "Tracer",
    "count",
    "enabled",
    "get_tracer",
    "install",
    "installed",
    "parse_prometheus_text",
    "peak_rss_bytes",
    "render_prometheus",
    "render_report",
    "render_self_times",
    "render_tree",
    "self_seconds",
    "span",
    "validate_trace_payload",
    "validate_tree",
]
