"""Structural validation of serialized trace payloads (stdlib-only).

``python -m repro.experiments --trace trace.json`` writes a payload of
the form::

    {"schema": "repro.obs.trace/v1",
     "wall_seconds": 12.3,
     "tree": {"roots": [...], "counters": {...}}}

:func:`validate_trace_payload` checks that shape (a hand-rolled JSON
schema — the container has no ``jsonschema``) and returns a list of
human-readable problems, empty when the payload is valid.  The CI smoke
step runs it as a CLI::

    python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import argparse
import json
import sys

TRACE_SCHEMA_ID = "repro.obs.trace/v1"

_SCALAR = (str, int, float, bool, type(None))


def _validate_node(node: object, path: str, problems: list[str]) -> None:
    if not isinstance(node, dict):
        problems.append(f"{path}: node must be an object, got {type(node).__name__}")
        return
    name = node.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{path}.name: must be a non-empty string")
    seconds = node.get("seconds", 0.0)
    if not isinstance(seconds, (int, float)) or isinstance(seconds, bool) or seconds < 0:
        problems.append(f"{path}.seconds: must be a non-negative number")
    count = node.get("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        problems.append(f"{path}.count: must be a positive integer")
    attrs = node.get("attrs", {})
    if not isinstance(attrs, dict):
        problems.append(f"{path}.attrs: must be an object")
    else:
        for key, value in attrs.items():
            if not isinstance(value, _SCALAR):
                problems.append(f"{path}.attrs[{key!r}]: must be a JSON scalar")
    counters = node.get("counters", {})
    if not isinstance(counters, dict):
        problems.append(f"{path}.counters: must be an object")
    else:
        for key, value in counters.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{path}.counters[{key!r}]: must be a number")
    for field in ("mem_peak_bytes", "rss_delta_bytes"):
        value = node.get(field, 0)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{path}.{field}: must be a non-negative integer")
    children = node.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{path}.children: must be a list")
        return
    for i, child in enumerate(children):
        _validate_node(child, f"{path}.children[{i}]", problems)
    # containment (children are disjoint sub-regions of their parent) is only
    # checkable on unaggregated spans: once nodes are merged — or concurrent
    # worker trees are adopted under a parent — child seconds are CPU time
    # summed across spans/processes and may legitimately exceed the parent's
    # wall time.  count == 1 throughout identifies the unaggregated case.
    unaggregated = count == 1 and all(
        isinstance(c, dict) and c.get("count", 1) == 1 for c in children
    )
    if (
        unaggregated
        and isinstance(seconds, (int, float))
        and not isinstance(seconds, bool)
    ):
        child_seconds = sum(
            c.get("seconds", 0.0)
            for c in children
            if isinstance(c, dict)
            and isinstance(c.get("seconds", 0.0), (int, float))
        )
        # a 1% tolerance absorbs clock jitter
        if child_seconds > seconds * 1.01 + 1e-6:
            problems.append(
                f"{path}: children cover {child_seconds:.6f}s > own {seconds:.6f}s"
            )


def validate_tree(tree: object, path: str = "tree") -> list[str]:
    """Problems with a serialized :class:`~repro.obs.tree.TraceTree` dict."""
    problems: list[str] = []
    if not isinstance(tree, dict):
        return [f"{path}: must be an object"]
    roots = tree.get("roots")
    if not isinstance(roots, list):
        problems.append(f"{path}.roots: must be a list")
    else:
        for i, root in enumerate(roots):
            _validate_node(root, f"{path}.roots[{i}]", problems)
    counters = tree.get("counters", {})
    if not isinstance(counters, dict):
        problems.append(f"{path}.counters: must be an object")
    return problems


def validate_trace_payload(payload: object) -> list[str]:
    """Problems with a ``--trace`` JSON payload; empty when valid."""
    if not isinstance(payload, dict):
        return ["payload: must be a JSON object"]
    problems: list[str] = []
    if payload.get("schema") != TRACE_SCHEMA_ID:
        problems.append(
            f"schema: expected {TRACE_SCHEMA_ID!r}, got {payload.get('schema')!r}"
        )
    wall = payload.get("wall_seconds")
    if wall is not None and (
        not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0
    ):
        problems.append("wall_seconds: must be a non-negative number")
    if "tree" not in payload:
        problems.append("tree: missing")
    else:
        problems.extend(validate_tree(payload["tree"]))
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="trace JSON file to validate")
    args = parser.parse_args(argv)
    try:
        payload = json.loads(open(args.path).read())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    problems = validate_trace_payload(payload)
    for problem in problems:
        print(f"invalid: {problem}", file=sys.stderr)
    if problems:
        return 1
    tree = payload["tree"]
    spans = sum(_count_spans(root) for root in tree["roots"])
    print(f"OK: {args.path} is a valid {TRACE_SCHEMA_ID} trace "
          f"({len(tree['roots'])} roots, {spans} spans)")
    return 0


def _count_spans(node: dict) -> int:
    return node.get("count", 1) + sum(
        _count_spans(child) for child in node.get("children", [])
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
