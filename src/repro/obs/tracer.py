"""Hierarchical tracing with optional memory profiling.

The :class:`Tracer` records nested, named spans::

    tracer = Tracer(memory="rss")
    with tracer.span("stack_pass", matrix="banded_001", level="l2") as sp:
        ...
    sp.seconds          # wall time of the region
    tracer.tree()       # serializable TraceTree of everything recorded

A *process-local ambient tracer* makes instrumentation free when nobody
is watching: library code calls the module-level :func:`span` /
:func:`count`, which return a shared no-op singleton (no allocation, no
clock read) until a tracer is :func:`install`-ed.  The hot paths of the
models, the simulator, the sweep pool and the service workers are
instrumented this way; enabling ``--trace`` (or the service's
``"trace": true`` flag) is what turns the spans on.

Memory modes:

* ``memory="rss"`` samples the process peak-RSS high-water mark at span
  boundaries; each span records how much the peak *grew* during it, which
  attributes a run's peak memory to a phase even though ``ru_maxrss``
  itself is monotonic.
* ``memory="tracemalloc"`` segments the tracemalloc peak per span (the
  peak is snapshotted and reset at child boundaries, so a parent's peak
  is the true maximum over its extent).  The tracer starts tracemalloc
  if it is not already running and stops it again on :meth:`close`.
"""

from __future__ import annotations

import contextlib
import sys
import time
import tracemalloc

from .tree import SpanNode, TraceTree

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    resource = None  # type: ignore[assignment]

_MEMORY_MODES = (None, "rss", "tracemalloc")


def peak_rss_bytes() -> int:
    """Peak resident set size of this process in bytes (0 if unknown)."""
    if resource is None:  # pragma: no cover - non-POSIX platforms
        return 0
    # ru_maxrss is KiB on Linux, bytes on macOS
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(rss) if sys.platform == "darwin" else int(rss) * 1024


class Span:
    """One open region; a context manager that records itself on exit.

    Exit converts the span into an immutable :class:`SpanNode` attached to
    the enclosing span (or the tracer's roots) — also on exception, in
    which case the exception type is kept in ``attrs["error"]`` and the
    exception propagates unchanged.
    """

    __slots__ = ("name", "attrs", "seconds", "counters", "mem_peak_bytes",
                 "rss_delta_bytes", "children", "_tracer", "_start",
                 "_pending_peak", "_rss_start")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        self.seconds = 0.0
        self.counters: dict = {}
        self.mem_peak_bytes = 0
        self.rss_delta_bytes = 0
        self.children: list[SpanNode] = []
        self._tracer = tracer
        self._start = 0.0
        self._pending_peak = 0
        self._rss_start = 0

    def add(self, name: str, value: int = 1) -> None:
        """Bump a counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + value

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        if tracer.memory == "rss":
            self._rss_start = peak_rss_bytes()
        elif tracer.memory == "tracemalloc":
            stack = tracer._stack
            if stack:
                parent = stack[-1]
                parent._pending_peak = max(
                    parent._pending_peak, tracemalloc.get_traced_memory()[1]
                )
            tracemalloc.reset_peak()
        tracer._stack.append(self)
        self._start = tracer.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        self.seconds = tracer.clock() - self._start
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        if tracer.memory == "rss":
            self.rss_delta_bytes = max(0, peak_rss_bytes() - self._rss_start)
        elif tracer.memory == "tracemalloc":
            self.mem_peak_bytes = max(
                self._pending_peak, tracemalloc.get_traced_memory()[1]
            )
            tracemalloc.reset_peak()
        # exception safety: the span is recorded and the stack unwound no
        # matter how the body ended; the exception itself propagates
        stack = tracer._stack
        if stack and stack[-1] is self:
            stack.pop()
        node = SpanNode(
            name=self.name,
            seconds=self.seconds,
            attrs=self.attrs,
            counters=self.counters,
            mem_peak_bytes=self.mem_peak_bytes,
            rss_delta_bytes=self.rss_delta_bytes,
            children=self.children,
        )
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(node)
            if tracer.memory == "tracemalloc":
                parent._pending_peak = max(parent._pending_peak, self.mem_peak_bytes)
        else:
            tracer.roots.append(node)
        return False


class _NullSpan:
    """The disabled-tracer fast path: one shared, do-nothing span.

    :func:`span` returns this singleton when no tracer is installed, so
    instrumented hot loops cost a dict lookup and two no-op calls — no
    allocation, no clock read.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def add(self, name: str, value: int = 1) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    #: finished-span fields, so `with span(...) as sp: ...; sp.seconds`
    #: reads 0 instead of raising when tracing is off
    seconds = 0.0
    rss_delta_bytes = 0
    mem_peak_bytes = 0


NULL_SPAN = _NullSpan()


class Tracer:
    """Records a forest of nested spans in one process.

    Not thread-safe by design: one tracer per process (or per worker
    task) keeps the span stack trivially correct; cross-process assembly
    goes through :class:`~repro.obs.tree.TraceTree`.
    """

    def __init__(self, memory: str | None = None, clock=time.perf_counter) -> None:
        if memory not in _MEMORY_MODES:
            raise ValueError(f"memory must be one of {_MEMORY_MODES}, got {memory!r}")
        self.memory = memory
        self.clock = clock
        self.roots: list[SpanNode] = []
        self.counters: dict = {}
        self._stack: list[Span] = []
        self._owns_tracemalloc = False
        if memory == "tracemalloc" and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    def span(self, name: str, **attrs) -> Span:
        """Open a named span (use as a context manager)."""
        return Span(self, name, attrs)

    def count(self, name: str, value: int = 1) -> None:
        """Bump a counter on the innermost open span (or the tracer)."""
        if self._stack:
            self._stack[-1].add(name, value)
        else:
            self.counters[name] = self.counters.get(name, 0) + value

    def tree(self) -> TraceTree:
        """The finished spans recorded so far, as a serializable tree."""
        return TraceTree(roots=list(self.roots), counters=dict(self.counters))

    def adopt(self, tree: TraceTree) -> None:
        """Graft another process's finished tree under the current span.

        This is the parent side of cross-process tracing: the sweep pool
        adopts each worker's tree in spec order, so the assembled run tree
        is deterministic regardless of completion order.
        """
        nodes = tree.roots
        if self._stack:
            self._stack[-1].children.extend(nodes)
        else:
            self.roots.extend(nodes)
        for key, value in tree.counters.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def close(self) -> None:
        """Release resources (stops tracemalloc if this tracer started it)."""
        if self._owns_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._owns_tracemalloc = False

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# process-local ambient tracer
# ----------------------------------------------------------------------

_ambient: Tracer | None = None


def get_tracer() -> Tracer | None:
    """The installed ambient tracer, or None when tracing is disabled."""
    return _ambient


def enabled() -> bool:
    """True when an ambient tracer is installed."""
    return _ambient is not None


def install(tracer: Tracer | None) -> Tracer | None:
    """Install (or, with None, remove) the ambient tracer; returns the old one."""
    global _ambient
    previous = _ambient
    _ambient = tracer
    return previous


@contextlib.contextmanager
def installed(tracer: Tracer):
    """Ambient-install a tracer for the duration of a block."""
    previous = install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


def span(name: str, **attrs):
    """A span on the ambient tracer; the shared no-op span when disabled."""
    tracer = _ambient
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def count(name: str, value: int = 1) -> None:
    """Bump a counter on the ambient tracer (no-op when disabled)."""
    tracer = _ambient
    if tracer is not None:
        tracer.count(name, value)
