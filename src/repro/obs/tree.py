"""Serializable span trees and their cross-process merge.

A :class:`TraceTree` is the data half of the tracing layer: a forest of
finished :class:`SpanNode` records plus tracer-level counters.  Trees are
plain JSON values end-to-end (``to_dict``/``from_dict``), which is what
lets fork-pool workers ship their spans back to the parent next to each
``MatrixRecord`` and lets the advisor service return a tree inline with a
response.

Two combination operations cover every consumer:

* :meth:`TraceTree.merge` concatenates forests — the parent's
  "reassemble one tree per run" step.  It is shape-preserving: every
  worker's spans survive as distinct roots.
* :meth:`TraceTree.merged` aggregates siblings by span name, recursively,
  summing wall time and counters and maxing memory peaks.  The result is
  deterministic (children sorted by name, commutative reductions only),
  so merging worker trees in any arrival order yields identical bytes —
  the property the cross-process tests pin down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class SpanNode:
    """One finished span: a named, timed region with children.

    ``seconds`` is inclusive wall time; :func:`self_seconds` derives the
    exclusive time.  ``count`` is 1 for a raw span and the number of
    constituent spans after :meth:`TraceTree.merged` aggregation.
    """

    name: str
    seconds: float = 0.0
    count: int = 1
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    #: tracemalloc peak during the span (``memory="tracemalloc"`` tracers)
    mem_peak_bytes: int = 0
    #: growth of the process peak-RSS high-water mark across the span
    #: (``memory="rss"`` tracers); monotonic, hence >= 0
    rss_delta_bytes: int = 0
    children: list["SpanNode"] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "count": self.count,
            "attrs": dict(self.attrs),
            "counters": dict(self.counters),
            "mem_peak_bytes": self.mem_peak_bytes,
            "rss_delta_bytes": self.rss_delta_bytes,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SpanNode":
        return cls(
            name=payload["name"],
            seconds=float(payload.get("seconds", 0.0)),
            count=int(payload.get("count", 1)),
            attrs=dict(payload.get("attrs", {})),
            counters=dict(payload.get("counters", {})),
            mem_peak_bytes=int(payload.get("mem_peak_bytes", 0)),
            rss_delta_bytes=int(payload.get("rss_delta_bytes", 0)),
            children=[cls.from_dict(c) for c in payload.get("children", [])],
        )


def self_seconds(node: SpanNode) -> float:
    """Exclusive wall time of a node (inclusive minus children)."""
    return max(0.0, node.seconds - sum(c.seconds for c in node.children))


def _merge_nodes(nodes: list[SpanNode]) -> list[SpanNode]:
    """Aggregate same-named siblings; output sorted by name (deterministic)."""
    by_name: dict[str, list[SpanNode]] = {}
    for node in nodes:
        by_name.setdefault(node.name, []).append(node)
    out = []
    for name in sorted(by_name):
        group = by_name[name]
        counters: dict = {}
        for node in group:
            for key, value in node.counters.items():
                counters[key] = counters.get(key, 0) + value
        attrs = dict(group[0].attrs)
        for node in group[1:]:
            if node.attrs != attrs:
                attrs = {}  # conflicting attributes do not survive aggregation
                break
        out.append(
            SpanNode(
                name=name,
                # fsum: exactly-rounded, hence independent of arrival order
                seconds=math.fsum(n.seconds for n in group),
                count=sum(n.count for n in group),
                attrs=attrs,
                counters=counters,
                mem_peak_bytes=max(n.mem_peak_bytes for n in group),
                rss_delta_bytes=sum(n.rss_delta_bytes for n in group),
                children=_merge_nodes(
                    [c for n in group for c in n.children]
                ),
            )
        )
    return out


@dataclass
class TraceTree:
    """A forest of finished spans plus tracer-level counters."""

    roots: list[SpanNode] = field(default_factory=list)
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "roots": [root.to_dict() for root in self.roots],
            "counters": dict(self.counters),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceTree":
        return cls(
            roots=[SpanNode.from_dict(r) for r in payload.get("roots", [])],
            counters=dict(payload.get("counters", {})),
        )

    @staticmethod
    def merge(trees: list["TraceTree"]) -> "TraceTree":
        """Concatenate forests and sum counters (shape-preserving)."""
        merged = TraceTree()
        for tree in trees:
            merged.roots.extend(tree.roots)
            for key, value in tree.counters.items():
                merged.counters[key] = merged.counters.get(key, 0) + value
        return merged

    def merged(self) -> "TraceTree":
        """Aggregate same-named spans recursively (order-independent)."""
        counters: dict = {}
        for key in sorted(self.counters):
            counters[key] = self.counters[key]
        return TraceTree(roots=_merge_nodes(self.roots), counters=counters)

    # -- queries --------------------------------------------------------
    def total_seconds(self) -> float:
        """Inclusive wall time covered by the root spans."""
        return sum(root.seconds for root in self.roots)

    def self_seconds_by_name(self) -> dict[str, float]:
        """Exclusive time aggregated by span name over the whole forest."""
        out: dict[str, float] = {}

        def walk(node: SpanNode) -> None:
            out[node.name] = out.get(node.name, 0.0) + self_seconds(node)
            for child in node.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return out

    def find(self, name: str) -> list[SpanNode]:
        """All nodes with a given span name, in depth-first order."""
        found: list[SpanNode] = []

        def walk(node: SpanNode) -> None:
            if node.name == name:
                found.append(node)
            for child in node.children:
                walk(child)

        for root in self.roots:
            walk(root)
        return found
