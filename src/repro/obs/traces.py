"""Bounded ring buffer of recent (and in-flight) request traces.

Both the replica daemon and the cluster gateway keep one
:class:`TraceBuffer` and expose it at ``GET /debug/traces``: the last N
finished traced requests (the envelope's merged span tree included),
slowest-first, optionally filtered by endpoint, plus whatever traced
requests are currently in flight.  The buffer is bounded by entry count
— it is a debugging porthole, not a trace store — and dropping the
oldest entry is counted so "you are only seeing the tail" is visible.

Thread-safe: the daemons serve requests on an asyncio loop but tests and
the in-process harnesses poke the buffer from other threads.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

DEFAULT_CAPACITY = 64


class TraceBuffer:
    """Recent finished traces + in-flight markers, bounded by capacity."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._finished: deque[dict] = deque(maxlen=capacity)
        self._in_flight: dict[int, dict] = {}
        self._tokens = itertools.count(1)
        self.recorded = 0
        self.dropped = 0

    # -- lifecycle ------------------------------------------------------
    def start(self, trace_id: str, endpoint: str) -> int:
        """Mark a traced request in flight; returns the token for finish."""
        token = next(self._tokens)
        entry = {
            "trace_id": trace_id,
            "endpoint": endpoint,
            "started_unix": time.time(),
        }
        with self._lock:
            self._in_flight[token] = entry
        return token

    def finish(
        self,
        token: int,
        *,
        seconds: float,
        status: str,
        tree: dict | None,
    ) -> None:
        """Move an in-flight request into the finished ring."""
        with self._lock:
            entry = self._in_flight.pop(token, None)
            if entry is None:
                return
            entry = dict(entry)
            entry["seconds"] = float(seconds)
            entry["status"] = status
            entry["tree"] = tree
            if len(self._finished) == self.capacity:
                self.dropped += 1
            self._finished.append(entry)
            self.recorded += 1

    def discard(self, token: int) -> None:
        """Drop an in-flight marker without recording (request abandoned)."""
        with self._lock:
            self._in_flight.pop(token, None)

    # -- exposition -----------------------------------------------------
    def snapshot(self, limit: int = 10, endpoint: str | None = None) -> dict:
        """The ``/debug/traces`` payload: slowest-N finished + in-flight."""
        limit = max(1, min(int(limit), self.capacity))
        with self._lock:
            finished = list(self._finished)
            in_flight = [dict(e) for e in self._in_flight.values()]
        if endpoint is not None:
            finished = [e for e in finished if e["endpoint"] == endpoint]
            in_flight = [e for e in in_flight if e["endpoint"] == endpoint]
        finished.sort(key=lambda e: e["seconds"], reverse=True)
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "in_flight": sorted(in_flight, key=lambda e: e["started_unix"]),
            "traces": finished[:limit],
        }
