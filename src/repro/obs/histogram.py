"""Cumulative latency histograms (Prometheus ``le`` bucket convention).

Moved here from ``repro.service.metrics`` so every observability consumer
— the advisor daemon, benchmarks, ad-hoc scripts — shares one histogram
implementation; the service module re-exports it for compatibility.
"""

from __future__ import annotations

#: Histogram bucket upper bounds in seconds (+Inf is implicit).
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram:
    """Cumulative histogram of observed seconds."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: +Inf
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile via linear interpolation in-bucket.

        Observations landing past the last finite bound clamp to that
        bound (the histogram cannot know how far past it they went), so
        tail quantiles are conservative-low there — exact exceedance
        accounting must ride on per-observation counters, not on this.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        cumulative, lower = 0, 0.0
        for bound, count in zip(self.buckets, self.counts):
            previous = cumulative
            cumulative += count
            if cumulative >= rank and count:
                return lower + (rank - previous) / count * (bound - lower)
            lower = bound
        return self.buckets[-1]

    def snapshot(self) -> dict:
        cumulative = 0
        out: dict = {"count": self.total, "sum_seconds": self.sum_seconds,
                     "buckets": {}}
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            out["buckets"][str(bound)] = cumulative
        out["buckets"]["+Inf"] = self.total
        out["quantiles"] = {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }
        return out
