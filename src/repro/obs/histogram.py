"""Cumulative latency histograms (Prometheus ``le`` bucket convention).

Moved here from ``repro.service.metrics`` so every observability consumer
— the advisor daemon, benchmarks, ad-hoc scripts — shares one histogram
implementation; the service module re-exports it for compatibility.
"""

from __future__ import annotations

#: Histogram bucket upper bounds in seconds (+Inf is implicit).
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                   0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)


class LatencyHistogram:
    """Cumulative histogram of observed seconds."""

    def __init__(self, buckets: tuple[float, ...] = LATENCY_BUCKETS) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot: +Inf
        self.total = 0
        self.sum_seconds = 0.0

    def observe(self, seconds: float) -> None:
        self.total += 1
        self.sum_seconds += seconds
        for i, bound in enumerate(self.buckets):
            if seconds <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        cumulative = 0
        out: dict = {"count": self.total, "sum_seconds": self.sum_seconds,
                     "buckets": {}}
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            out["buckets"][str(bound)] = cumulative
        out["buckets"]["+Inf"] = self.total
        return out
