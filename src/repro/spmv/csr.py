"""Compressed Sparse Row (CSR) matrix container.

Implemented from scratch on top of plain NumPy arrays, mirroring the memory
layout assumed by the paper's SpMV kernel (Listing 1):

* ``rowptr`` — ``int64`` array of length ``num_rows + 1`` (8-byte values),
* ``colidx`` — ``int32`` array of length ``nnz`` (4-byte values),
* ``values`` — ``float64`` array of length ``nnz`` (8-byte values).

These element sizes enter the paper's analytic miss formulas
(8K/L, 4K/L, 8(M+1)/L, 8M/L terms), so they are fixed rather than generic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

ROWPTR_BYTES = 8
COLIDX_BYTES = 4
VALUE_BYTES = 8
VECTOR_BYTES = 8


@dataclass(frozen=True)
class CSRMatrix:
    """A sparse matrix in CSR format.

    Rows are ``num_rows``, columns ``num_cols``; ``rowptr[r]:rowptr[r+1]``
    index the nonzeros of row ``r`` in ``colidx``/``values``.
    """

    num_rows: int
    num_cols: int
    rowptr: np.ndarray
    colidx: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rowptr", np.ascontiguousarray(self.rowptr, dtype=np.int64))
        object.__setattr__(self, "colidx", np.ascontiguousarray(self.colidx, dtype=np.int32))
        object.__setattr__(self, "values", np.ascontiguousarray(self.values, dtype=np.float64))
        if self.num_rows < 0 or self.num_cols < 0:
            raise ValueError("matrix dimensions must be non-negative")
        if self.rowptr.shape != (self.num_rows + 1,):
            raise ValueError(
                f"rowptr must have length num_rows+1={self.num_rows + 1}, "
                f"got {self.rowptr.shape[0]}"
            )
        if self.rowptr[0] != 0:
            raise ValueError("rowptr[0] must be 0")
        if np.any(np.diff(self.rowptr) < 0):
            raise ValueError("rowptr must be non-decreasing")
        nnz = int(self.rowptr[-1])
        if self.colidx.shape != (nnz,):
            raise ValueError(f"colidx must have length nnz={nnz}, got {self.colidx.shape[0]}")
        if self.values.shape != (nnz,):
            raise ValueError(f"values must have length nnz={nnz}, got {self.values.shape[0]}")
        if nnz and (self.colidx.min() < 0 or self.colidx.max() >= self.num_cols):
            raise ValueError("column indices out of range")

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (K in the paper)."""
        return int(self.rowptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def row_lengths(self) -> np.ndarray:
        """Nonzeros per row."""
        return np.diff(self.rowptr)

    # ------------------------------------------------------------------
    # byte sizes of the five data structures of the SpMV kernel
    # ------------------------------------------------------------------
    @property
    def values_bytes(self) -> int:
        return VALUE_BYTES * self.nnz

    @property
    def colidx_bytes(self) -> int:
        return COLIDX_BYTES * self.nnz

    @property
    def rowptr_bytes(self) -> int:
        return ROWPTR_BYTES * (self.num_rows + 1)

    @property
    def x_bytes(self) -> int:
        return VECTOR_BYTES * self.num_cols

    @property
    def y_bytes(self) -> int:
        return VECTOR_BYTES * self.num_rows

    @property
    def matrix_bytes(self) -> int:
        """Bytes of the non-temporal matrix data (values + colidx + rowptr)."""
        return self.values_bytes + self.colidx_bytes + self.rowptr_bytes

    @property
    def total_bytes(self) -> int:
        """Full SpMV working set: matrix data plus both vectors."""
        return self.matrix_bytes + self.x_bytes + self.y_bytes

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_coo(
        cls,
        num_rows: int,
        num_cols: int,
        rows: np.ndarray,
        cols: np.ndarray,
        vals: np.ndarray | None = None,
        name: str = "",
        sum_duplicates: bool = True,
    ) -> "CSRMatrix":
        """Build a CSR matrix from coordinate triplets.

        Duplicate (row, col) entries are summed when ``sum_duplicates`` is
        set, matching the usual sparse-assembly convention.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if vals is None:
            vals = np.ones(rows.shape[0], dtype=np.float64)
        else:
            vals = np.asarray(vals, dtype=np.float64)
            if vals.shape != rows.shape:
                raise ValueError("vals must have the same length as rows/cols")
        if rows.size:
            if rows.min() < 0 or rows.max() >= num_rows:
                raise ValueError("row indices out of range")
            if cols.min() < 0 or cols.max() >= num_cols:
                raise ValueError("column indices out of range")
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        if sum_duplicates and rows.size:
            keep = np.empty(rows.shape[0], dtype=bool)
            keep[0] = True
            keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
            group = np.cumsum(keep) - 1
            summed = np.zeros(int(group[-1]) + 1, dtype=np.float64)
            np.add.at(summed, group, vals)
            rows, cols, vals = rows[keep], cols[keep], summed
        rowptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.add.at(rowptr, rows + 1, 1)
        np.cumsum(rowptr, out=rowptr)
        return cls(num_rows, num_cols, rowptr, cols.astype(np.int32), vals, name=name)

    @classmethod
    def from_dense(cls, dense: np.ndarray, name: str = "") -> "CSRMatrix":
        """Build a CSR matrix from a 2-D dense array, dropping zeros."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("dense must be 2-D")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(
            dense.shape[0], dense.shape[1], rows, cols, dense[rows, cols], name=name
        )

    def to_dense(self) -> np.ndarray:
        """Densify (for tests / tiny matrices only)."""
        out = np.zeros(self.shape, dtype=np.float64)
        rows = np.repeat(np.arange(self.num_rows), self.row_lengths)
        out[rows, self.colidx] = self.values
        return out

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (rows, cols, values) coordinate arrays."""
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), self.row_lengths)
        return rows, self.colidx.astype(np.int64), self.values.copy()

    def transpose(self) -> "CSRMatrix":
        """Return the transpose as a new CSR matrix."""
        rows, cols, vals = self.to_coo()
        return CSRMatrix.from_coo(
            self.num_cols, self.num_rows, cols, rows, vals,
            name=f"{self.name}^T" if self.name else "",
            sum_duplicates=False,
        )

    def permute(self, row_perm: np.ndarray, col_perm: np.ndarray | None = None) -> "CSRMatrix":
        """Symmetric or two-sided permutation ``A[p, :][:, q]``.

        ``row_perm[i]`` gives the *original* row placed at new position ``i``
        (gather convention).  ``col_perm`` defaults to ``row_perm`` for
        square matrices and to identity otherwise.
        """
        row_perm = np.asarray(row_perm, dtype=np.int64)
        if row_perm.shape != (self.num_rows,):
            raise ValueError("row_perm must have length num_rows")
        if col_perm is None:
            col_perm = row_perm if self.num_rows == self.num_cols else np.arange(self.num_cols)
        col_perm = np.asarray(col_perm, dtype=np.int64)
        if col_perm.shape != (self.num_cols,):
            raise ValueError("col_perm must have length num_cols")
        inv_col = np.empty(self.num_cols, dtype=np.int64)
        inv_col[col_perm] = np.arange(self.num_cols)
        lengths = self.row_lengths[row_perm]
        rowptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(lengths, out=rowptr[1:])
        colidx = np.empty(self.nnz, dtype=np.int32)
        values = np.empty(self.nnz, dtype=np.float64)
        # gather rows in permuted order
        src_starts = self.rowptr[row_perm]
        idx = np.repeat(src_starts - rowptr[:-1], lengths) + np.arange(self.nnz)
        colidx[:] = inv_col[self.colidx[idx]]
        values[:] = self.values[idx]
        # keep columns sorted within each row
        out = CSRMatrix(self.num_rows, self.num_cols, rowptr, colidx, values, name=self.name)
        return out.sort_indices()

    def sort_indices(self) -> "CSRMatrix":
        """Return a copy with column indices sorted within each row."""
        rows = np.repeat(np.arange(self.num_rows, dtype=np.int64), self.row_lengths)
        order = np.lexsort((self.colidx, rows))
        return CSRMatrix(
            self.num_rows,
            self.num_cols,
            self.rowptr,
            self.colidx[order],
            self.values[order],
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"CSRMatrix{label}({self.num_rows}x{self.num_cols}, nnz={self.nnz}, "
            f"{self.total_bytes / 2**20:.2f} MiB working set)"
        )
