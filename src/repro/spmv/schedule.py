"""Thread scheduling of CSR rows.

The paper parallelises the outer row loop with an OpenMP worksharing
construct (static schedule), i.e. contiguous, row-balanced chunks.  Alappat
et al. additionally balance the *nonzeros* per thread, which the paper cites
as one reason its Table-1 numbers differ for skewed matrices; both schedules
are implemented so the ablation bench can quantify that effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix


@dataclass(frozen=True)
class RowSchedule:
    """Assignment of contiguous row ranges to threads.

    ``bounds`` has length ``num_threads + 1``; thread ``t`` owns rows
    ``bounds[t]:bounds[t+1]``.
    """

    num_threads: int
    bounds: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "bounds", np.ascontiguousarray(self.bounds, dtype=np.int64))
        if self.bounds.shape != (self.num_threads + 1,):
            raise ValueError("bounds must have length num_threads + 1")
        if self.bounds[0] != 0 or np.any(np.diff(self.bounds) < 0):
            raise ValueError("bounds must be non-decreasing and start at 0")

    def rows_of(self, thread: int) -> tuple[int, int]:
        """Half-open row range of a thread."""
        if not 0 <= thread < self.num_threads:
            raise ValueError(f"thread must be in [0, {self.num_threads})")
        return int(self.bounds[thread]), int(self.bounds[thread + 1])

    def thread_of_row(self, row: int) -> int:
        """Owning thread of a row."""
        t = int(np.searchsorted(self.bounds, row, side="right")) - 1
        if not 0 <= row < self.bounds[-1]:
            raise ValueError(f"row {row} outside scheduled range")
        return min(t, self.num_threads - 1)

    def nnz_per_thread(self, matrix: CSRMatrix) -> np.ndarray:
        """Nonzeros assigned to each thread."""
        return matrix.rowptr[self.bounds[1:]] - matrix.rowptr[self.bounds[:-1]]

    def imbalance(self, matrix: CSRMatrix) -> float:
        """Max/mean nonzero load ratio (1.0 = perfectly balanced)."""
        loads = self.nnz_per_thread(matrix)
        mean = loads.mean() if self.num_threads else 0.0
        return float(loads.max() / mean) if mean > 0 else 1.0


def static_schedule(matrix: CSRMatrix, num_threads: int) -> RowSchedule:
    """OpenMP-style static schedule: rows split into equal contiguous chunks."""
    _check_threads(num_threads)
    bounds = np.linspace(0, matrix.num_rows, num_threads + 1).round().astype(np.int64)
    return RowSchedule(num_threads, bounds)


def balanced_schedule(matrix: CSRMatrix, num_threads: int) -> RowSchedule:
    """Nonzero-balanced contiguous schedule (the Alappat et al. variant).

    Row boundaries are placed at the quantiles of the cumulative nonzero
    count, so every thread receives roughly ``nnz / num_threads`` nonzeros.
    """
    _check_threads(num_threads)
    targets = matrix.nnz * np.arange(1, num_threads, dtype=np.float64) / num_threads
    inner = np.searchsorted(matrix.rowptr[1:], targets, side="left") + 1
    bounds = np.concatenate(([0], np.minimum(inner, matrix.num_rows), [matrix.num_rows]))
    bounds = np.maximum.accumulate(bounds)
    return RowSchedule(num_threads, bounds.astype(np.int64))


def _check_threads(num_threads: int) -> None:
    if num_threads <= 0:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
