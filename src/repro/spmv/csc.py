"""Compressed Sparse Column (CSC) storage and SpMV kernels.

The paper's conclusion proposes extending the miss-estimation method to
other kernels; CSC SpMV is the canonical dual of CSR: the roles of the
vectors swap (``x`` is streamed once per column, ``y`` is updated through
indirect accesses), so the sector-cache question inverts — now the
*output* vector's locality decides whether partitioning pays off.

Element sizes mirror the CSR convention (8-byte values/pointers, 4-byte
indices) so the analytic miss terms carry over.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix


@dataclass(frozen=True)
class CSCMatrix:
    """A sparse matrix in CSC format.

    ``colptr[c]:colptr[c+1]`` index the nonzeros of column ``c`` in
    ``rowidx``/``values``.
    """

    num_rows: int
    num_cols: int
    colptr: np.ndarray
    rowidx: np.ndarray
    values: np.ndarray
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "colptr", np.ascontiguousarray(self.colptr, dtype=np.int64))
        object.__setattr__(self, "rowidx", np.ascontiguousarray(self.rowidx, dtype=np.int32))
        object.__setattr__(self, "values", np.ascontiguousarray(self.values, dtype=np.float64))
        if self.colptr.shape != (self.num_cols + 1,):
            raise ValueError("colptr must have length num_cols + 1")
        if self.colptr[0] != 0 or np.any(np.diff(self.colptr) < 0):
            raise ValueError("colptr must be non-decreasing and start at 0")
        nnz = int(self.colptr[-1])
        if self.rowidx.shape != (nnz,) or self.values.shape != (nnz,):
            raise ValueError("rowidx/values must have length nnz")
        if nnz and (self.rowidx.min() < 0 or self.rowidx.max() >= self.num_rows):
            raise ValueError("row indices out of range")

    @property
    def nnz(self) -> int:
        return int(self.colptr[-1])

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_cols)

    @property
    def col_lengths(self) -> np.ndarray:
        return np.diff(self.colptr)

    @classmethod
    def from_csr(cls, matrix: CSRMatrix) -> "CSCMatrix":
        """Convert from CSR (a transpose of the index structure)."""
        transposed = matrix.transpose()
        return cls(
            num_rows=matrix.num_rows,
            num_cols=matrix.num_cols,
            colptr=transposed.rowptr,
            rowidx=transposed.colidx,
            values=transposed.values,
            name=matrix.name,
        )

    def to_csr(self) -> CSRMatrix:
        """Convert back to CSR."""
        as_rows = CSRMatrix(
            self.num_cols, self.num_rows, self.colptr, self.rowidx, self.values
        )
        out = as_rows.transpose()
        return CSRMatrix(
            self.num_rows, self.num_cols, out.rowptr, out.colidx, out.values,
            name=self.name,
        )

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y + A x`` column-wise (scatter into y)."""
        if x.shape != (self.num_cols,):
            raise ValueError(f"x must have shape ({self.num_cols},), got {x.shape}")
        if y is None:
            y = np.zeros(self.num_rows, dtype=np.float64)
        elif y.shape != (self.num_rows,):
            raise ValueError(f"y must have shape ({self.num_rows},), got {y.shape}")
        if self.nnz == 0:
            return y
        contributions = self.values * np.repeat(x, self.col_lengths)
        np.add.at(y, self.rowidx, contributions)
        return y

    def spmv_transposed(self, y_in: np.ndarray, x_out: np.ndarray | None = None) -> np.ndarray:
        """Compute ``x_out + A^T y_in`` (a gather, CSR-like over columns)."""
        if y_in.shape != (self.num_rows,):
            raise ValueError(f"y_in must have shape ({self.num_rows},), got {y_in.shape}")
        if x_out is None:
            x_out = np.zeros(self.num_cols, dtype=np.float64)
        elif x_out.shape != (self.num_cols,):
            raise ValueError("x_out has the wrong shape")
        if self.nnz == 0:
            return x_out
        products = self.values * y_in[self.rowidx]
        starts = self.colptr[:-1]
        nonempty = self.col_lengths > 0
        if np.all(nonempty):
            x_out += np.add.reduceat(products, starts)
        else:
            idx = np.flatnonzero(nonempty)
            x_out[idx] += np.add.reduceat(products, starts[idx])
        return x_out
