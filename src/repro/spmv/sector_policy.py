"""Sector-cache partitioning policy.

Emulates the semantics of the Fujitsu compiler directives used in the paper
(Listing 1)::

    #pragma procedure scache_isolate_way L2=N2 [L1=N1]
    #pragma procedure scache_isolate_assign a colidx

A :class:`SectorPolicy` names the arrays assigned to sector 1 and the number
of L1/L2 ways given to that sector; everything else lives in sector 0.  The
trace generator tags each memory reference with its sector ID (the hardware
encodes it in the top byte of the virtual address; here it is an explicit
field), and the cache simulator and the partitioned reuse-distance model both
honour the way split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..machine.a64fx import A64FX

#: The five data structures of the CSR SpMV kernel, by paper name.
ARRAYS = ("x", "y", "values", "colidx", "rowptr")

#: Default assignment from Listing 1: non-temporal matrix data to sector 1.
MATRIX_DATA = frozenset({"values", "colidx"})


@dataclass(frozen=True)
class SectorPolicy:
    """Assignment of SpMV arrays to cache sectors plus the way split.

    ``l2_sector1_ways == 0`` (and likewise for L1) disables partitioning at
    that level: all data competes for the full cache.
    """

    sector1_arrays: frozenset[str] = field(default_factory=lambda: MATRIX_DATA)
    l2_sector1_ways: int = 0
    l1_sector1_ways: int = 0

    def __post_init__(self) -> None:
        unknown = set(self.sector1_arrays) - set(ARRAYS)
        if unknown:
            raise ValueError(f"unknown arrays in sector 1: {sorted(unknown)}")
        if self.l2_sector1_ways < 0 or self.l1_sector1_ways < 0:
            raise ValueError("way counts must be non-negative")

    def validate(self, machine: A64FX) -> None:
        """Check the way split fits the machine (at least one way per sector)."""
        if self.l2_sector1_ways and not 1 <= self.l2_sector1_ways <= machine.l2.ways - 1:
            raise ValueError(
                f"L2 sector-1 ways must be in [1, {machine.l2.ways - 1}], "
                f"got {self.l2_sector1_ways}"
            )
        if self.l1_sector1_ways and not 1 <= self.l1_sector1_ways <= machine.l1.ways - 1:
            raise ValueError(
                f"L1 sector-1 ways must be in [1, {machine.l1.ways - 1}], "
                f"got {self.l1_sector1_ways}"
            )

    @property
    def l2_enabled(self) -> bool:
        return self.l2_sector1_ways > 0

    @property
    def l1_enabled(self) -> bool:
        return self.l1_sector1_ways > 0

    def sector_of(self, array: str) -> int:
        """Sector ID (0 or 1) of a named array."""
        if array not in ARRAYS:
            raise ValueError(f"unknown array {array!r}")
        return 1 if array in self.sector1_arrays else 0

    def describe(self) -> str:
        """Human-readable form, close to the FCC pragma."""
        if not self.l2_enabled and not self.l1_enabled:
            return "sector cache disabled"
        ways = f"L2={self.l2_sector1_ways}"
        if self.l1_enabled:
            ways += f" L1={self.l1_sector1_ways}"
        arrays = " ".join(sorted(self.sector1_arrays))
        return f"scache_isolate_way {ways}; scache_isolate_assign {arrays}"

    def to_dict(self) -> dict:
        """JSON-serialisable form (sorted arrays so output is canonical)."""
        return {
            "sector1_arrays": sorted(self.sector1_arrays),
            "l2_sector1_ways": self.l2_sector1_ways,
            "l1_sector1_ways": self.l1_sector1_ways,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SectorPolicy":
        """Inverse of :meth:`to_dict`; missing fields take the defaults."""
        arrays = payload.get("sector1_arrays")
        return cls(
            sector1_arrays=MATRIX_DATA if arrays is None else frozenset(arrays),
            l2_sector1_ways=int(payload.get("l2_sector1_ways", 0)),
            l1_sector1_ways=int(payload.get("l1_sector1_ways", 0)),
        )


def no_sector_cache() -> SectorPolicy:
    """Baseline: sector cache disabled at both levels."""
    return SectorPolicy(l2_sector1_ways=0, l1_sector1_ways=0)


def listing1_policy(l2_ways: int, l1_ways: int = 0) -> SectorPolicy:
    """The paper's policy: values+colidx isolated with the given way counts."""
    return SectorPolicy(
        sector1_arrays=MATRIX_DATA, l2_sector1_ways=l2_ways, l1_sector1_ways=l1_ways
    )


def isolate_x_policy(l2_ways: int, l1_ways: int = 0) -> SectorPolicy:
    """Section 3.1's alternative: everything except ``x`` in sector 1.

    For class-(3) matrices the paper suggests also assigning ``rowptr`` and
    ``y`` to the small partition, leaving a maximal partition for ``x``.
    """
    return SectorPolicy(
        sector1_arrays=frozenset({"values", "colidx", "rowptr", "y"}),
        l2_sector1_ways=l2_ways,
        l1_sector1_ways=l1_ways,
    )
