"""SpMV substrate: sparse storage formats, kernels, schedules, sector policies."""

from .csc import CSCMatrix
from .csr import CSRMatrix
from .kernels import flops, spmv, spmv_reference, spmv_rows
from .merge import merge_path_search, merge_schedule, spmv_merge
from .schedule import RowSchedule, balanced_schedule, static_schedule
from .sector_policy import (
    ARRAYS,
    MATRIX_DATA,
    SectorPolicy,
    isolate_x_policy,
    listing1_policy,
    no_sector_cache,
)
from .sellcs import SellCSigmaMatrix

__all__ = [
    "ARRAYS",
    "CSCMatrix",
    "CSRMatrix",
    "MATRIX_DATA",
    "RowSchedule",
    "SectorPolicy",
    "SellCSigmaMatrix",
    "balanced_schedule",
    "flops",
    "isolate_x_policy",
    "listing1_policy",
    "merge_path_search",
    "merge_schedule",
    "no_sector_cache",
    "spmv",
    "spmv_merge",
    "spmv_reference",
    "spmv_rows",
    "static_schedule",
]
