"""Merge-based CSR SpMV (Merrill & Garland, PPoPP 2016).

The paper cites merge-based SpMV as the standard remedy for workload
imbalance when the nonzeros-per-row distribution is skewed.  It is included
as the baseline scheduler/kernel: the 2-D merge path over (row boundaries,
nonzeros) is split into equal-length diagonals, one per thread, so every
thread processes the same number of merge items regardless of row lengths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix


@dataclass(frozen=True)
class MergeCoordinate:
    """A point on the merge path: (row index, nonzero index)."""

    row: int
    nonzero: int


def merge_path_search(diagonal: int, rowptr_end: np.ndarray, nnz: int) -> MergeCoordinate:
    """Find the merge-path coordinate crossing a given diagonal.

    The merge path consumes either a row-end marker (``rowptr_end[r]``) or a
    nonzero index at each step; diagonal ``d`` satisfies ``row + nz == d``.
    Binary search for the greatest ``row`` with ``rowptr_end[row'] <= d - row'
    `` for all ``row' < row`` — the standard CUB formulation.
    """
    num_rows = rowptr_end.shape[0]
    lo = max(0, diagonal - nnz)
    hi = min(diagonal, num_rows)
    while lo < hi:
        mid = (lo + hi) // 2
        if rowptr_end[mid] <= diagonal - mid - 1:
            lo = mid + 1
        else:
            hi = mid
    return MergeCoordinate(row=lo, nonzero=diagonal - lo)


def merge_schedule(matrix: CSRMatrix, num_threads: int) -> list[tuple[MergeCoordinate, MergeCoordinate]]:
    """Split the merge path into ``num_threads`` equal spans.

    Returns per-thread (start, end) coordinates.  The total path length is
    ``num_rows + nnz`` items.
    """
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    rowptr_end = matrix.rowptr[1:]
    path_len = matrix.num_rows + matrix.nnz
    spans = []
    for t in range(num_threads):
        d0 = (path_len * t) // num_threads
        d1 = (path_len * (t + 1)) // num_threads
        spans.append(
            (
                merge_path_search(d0, rowptr_end, matrix.nnz),
                merge_path_search(d1, rowptr_end, matrix.nnz),
            )
        )
    return spans


def spmv_merge(
    matrix: CSRMatrix, x: np.ndarray, y: np.ndarray | None = None, num_threads: int = 1
) -> np.ndarray:
    """Merge-based CSR SpMV computing ``y + A x``.

    Each thread walks its merge-path span; partial sums of rows straddling a
    span boundary are fixed up afterwards, as in the original algorithm.
    """
    if y is None:
        y = np.zeros(matrix.num_rows, dtype=np.float64)
    if x.shape != (matrix.num_cols,):
        raise ValueError(f"x must have shape ({matrix.num_cols},), got {x.shape}")
    if y.shape != (matrix.num_rows,):
        raise ValueError(f"y must have shape ({matrix.num_rows},), got {y.shape}")
    rowptr_end = matrix.rowptr[1:]
    spans = merge_schedule(matrix, num_threads)
    for start, end in spans:
        row, nz = start.row, start.nonzero
        acc = 0.0
        while row < end.row or (row == end.row and nz < end.nonzero):
            if row < matrix.num_rows and nz == rowptr_end[row]:
                # consume a row-end: commit the accumulator (partial sums of
                # rows straddling span boundaries combine additively, which
                # the real parallel algorithm achieves with a carry fix-up)
                y[row] += acc
                acc = 0.0
                row += 1
            else:
                acc += matrix.values[nz] * x[matrix.colidx[nz]]
                nz += 1
        if row < matrix.num_rows and acc != 0.0:
            y[row] += acc
    return y
