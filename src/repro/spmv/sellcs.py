"""SELL-C-sigma sparse storage and SpMV kernel.

The paper's related work notes that Alappat et al. found SELL-C-sigma
faster than CSR on the A64FX but did not study it with the sector cache,
and names "other sparse matrix storage formats" as future work.  This
module provides the format so that study can be run on the simulated
testbed (see ``benchmarks/bench_ablation_sellcs.py``).

SELL-C-sigma (Kreutzer et al.) packs rows into *chunks* of C rows, each
stored column-major and padded to the chunk's longest row; rows are sorted
by descending length inside windows of sigma rows first, which keeps
padding small while disturbing locality only locally.  On SIMD machines C
matches the vector width; the A64FX's 512-bit SVE gives C = 8 doubles.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRMatrix


@dataclass(frozen=True)
class SellCSigmaMatrix:
    """A sparse matrix in SELL-C-sigma format.

    Attributes
    ----------
    chunk_size:
        C — rows per chunk (the SIMD width).
    sigma:
        The sorting-window size (sigma = 1 disables sorting; sigma = rows
        is full sorting).
    chunk_ptr:
        Start offset of each chunk in ``colidx``/``values``
        (length ``num_chunks + 1``); chunk ``c`` occupies
        ``chunk_ptr[c]:chunk_ptr[c+1]`` = ``C * chunk_len[c]`` slots.
    chunk_len:
        Width (padded row length) of each chunk.
    colidx / values:
        Column indices and values, column-major inside each chunk; padded
        slots carry column 0 and value 0.
    row_perm:
        ``row_perm[i]`` is the original row stored at packed position
        ``i`` (gather convention, like :meth:`CSRMatrix.permute`).
    """

    num_rows: int
    num_cols: int
    chunk_size: int
    sigma: int
    chunk_ptr: np.ndarray
    chunk_len: np.ndarray
    colidx: np.ndarray
    values: np.ndarray
    row_perm: np.ndarray
    name: str = ""

    @property
    def num_chunks(self) -> int:
        return int(self.chunk_len.shape[0])

    @property
    def nnz_stored(self) -> int:
        """Stored slots including padding."""
        return int(self.colidx.shape[0])

    @property
    def padding_ratio(self) -> float:
        """Stored slots per structural nonzero (1.0 = no padding)."""
        nnz = int(np.count_nonzero(self.values)) if self.nnz_stored else 0
        # structural zeros may exist; recompute from the builder's count
        return self.nnz_stored / max(self._structural_nnz, 1)

    @property
    def _structural_nnz(self) -> int:
        # padded slots always hold value 0 AND column 0; count real slots
        # via the per-chunk row lengths recorded at build time
        return int(self.row_lengths.sum())

    @property
    def row_lengths(self) -> np.ndarray:
        """Original (unpadded) nonzero count per packed row position."""
        return self._row_lengths

    # populated by the builder; dataclass field workaround
    _row_lengths: np.ndarray = None  # type: ignore[assignment]

    @classmethod
    def from_csr(
        cls,
        matrix: CSRMatrix,
        chunk_size: int = 8,
        sigma: int | None = None,
    ) -> "SellCSigmaMatrix":
        """Convert a CSR matrix (C = 8 matches the A64FX SVE width)."""
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        if sigma is None:
            sigma = max(chunk_size, 1) * 32
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        n = matrix.num_rows
        lengths = matrix.row_lengths
        # sort rows by descending length within sigma windows
        perm_parts = []
        for start in range(0, n, sigma):
            stop = min(start + sigma, n)
            window = np.arange(start, stop)
            order = np.argsort(-lengths[window], kind="stable")
            perm_parts.append(window[order])
        row_perm = (
            np.concatenate(perm_parts) if perm_parts else np.empty(0, dtype=np.int64)
        )

        num_chunks = -(-n // chunk_size) if n else 0
        chunk_len = np.zeros(num_chunks, dtype=np.int64)
        packed_lengths = lengths[row_perm] if n else np.empty(0, dtype=np.int64)
        for c in range(num_chunks):
            rows = packed_lengths[c * chunk_size : (c + 1) * chunk_size]
            chunk_len[c] = int(rows.max()) if rows.size else 0
        chunk_ptr = np.zeros(num_chunks + 1, dtype=np.int64)
        np.cumsum(chunk_len * chunk_size, out=chunk_ptr[1:])

        colidx = np.zeros(int(chunk_ptr[-1]), dtype=np.int32)
        values = np.zeros(int(chunk_ptr[-1]), dtype=np.float64)
        for c in range(num_chunks):
            width = int(chunk_len[c])
            base = int(chunk_ptr[c])
            for lane in range(chunk_size):
                pos = c * chunk_size + lane
                if pos >= n:
                    break
                src = int(row_perm[pos])
                lo, hi = int(matrix.rowptr[src]), int(matrix.rowptr[src + 1])
                count = hi - lo
                # column-major: slot j of lane sits at base + j*C + lane
                dst = base + np.arange(count) * chunk_size + lane
                colidx[dst] = matrix.colidx[lo:hi]
                values[dst] = matrix.values[lo:hi]
        out = cls(
            num_rows=n,
            num_cols=matrix.num_cols,
            chunk_size=chunk_size,
            sigma=sigma,
            chunk_ptr=chunk_ptr,
            chunk_len=chunk_len,
            colidx=colidx,
            values=values,
            row_perm=row_perm,
            name=matrix.name,
        )
        object.__setattr__(out, "_row_lengths", packed_lengths)
        return out

    # ------------------------------------------------------------------
    def spmv(self, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
        """Compute ``y + A x`` (result in original row order)."""
        if x.shape != (self.num_cols,):
            raise ValueError(f"x must have shape ({self.num_cols},), got {x.shape}")
        if y is None:
            y = np.zeros(self.num_rows, dtype=np.float64)
        elif y.shape != (self.num_rows,):
            raise ValueError(f"y must have shape ({self.num_rows},), got {y.shape}")
        C = self.chunk_size
        for c in range(self.num_chunks):
            width = int(self.chunk_len[c])
            base = int(self.chunk_ptr[c])
            lanes = min(C, self.num_rows - c * C)
            if width == 0 or lanes <= 0:
                continue
            block_cols = self.colidx[base : base + width * C].reshape(width, C)
            block_vals = self.values[base : base + width * C].reshape(width, C)
            acc = (block_vals[:, :lanes] * x[block_cols[:, :lanes]]).sum(axis=0)
            y[self.row_perm[c * C : c * C + lanes]] += acc
        return y

    def memory_bytes(self) -> int:
        """Bytes of the stored format (8B values, 4B colidx, 8B chunk_ptr)."""
        return (
            8 * self.values.shape[0]
            + 4 * self.colidx.shape[0]
            + 8 * (self.chunk_ptr.shape[0] + self.chunk_len.shape[0])
            + 8 * self.row_perm.shape[0]
        )
