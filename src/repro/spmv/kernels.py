"""SpMV kernels computing ``y <- y + A x`` for CSR matrices.

Two implementations are provided:

* :func:`spmv_reference` — a plain Python double loop, a line-for-line
  transcription of the paper's Listing 1.  It exists as the semantic oracle
  for tests and for the worked Figure-1 example.
* :func:`spmv` — a vectorized NumPy version used everywhere else.

Both accumulate into ``y`` (the paper's kernel is ``y[r] += a[i] * x[col]``),
so callers doing a plain product must pass a zero ``y``.
"""

from __future__ import annotations

import numpy as np

from .csr import CSRMatrix


def spmv_reference(matrix: CSRMatrix, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Scalar CSR SpMV, the oracle (Listing 1 of the paper)."""
    _check_operands(matrix, x, y)
    rowptr, colidx, values = matrix.rowptr, matrix.colidx, matrix.values
    for r in range(matrix.num_rows):
        acc = y[r]
        for i in range(rowptr[r], rowptr[r + 1]):
            acc += values[i] * x[colidx[i]]
        y[r] = acc
    return y


def spmv(matrix: CSRMatrix, x: np.ndarray, y: np.ndarray | None = None) -> np.ndarray:
    """Vectorized CSR SpMV: ``y + A x`` (``y`` defaults to zeros).

    Uses a segmented reduction over the nonzeros (``np.add.reduceat`` on the
    row pointer), which preserves left-to-right accumulation order per row
    closely enough for the float64 tolerance used in tests.
    """
    if y is None:
        y = np.zeros(matrix.num_rows, dtype=np.float64)
    _check_operands(matrix, x, y)
    if matrix.nnz == 0:
        return y
    products = matrix.values * x[matrix.colidx]
    # reduceat misbehaves for empty rows (repeats the next segment), so mask
    starts = matrix.rowptr[:-1]
    nonempty = matrix.row_lengths > 0
    if np.all(nonempty):
        y += np.add.reduceat(products, starts)
    else:
        idx = np.flatnonzero(nonempty)
        partial = np.add.reduceat(products, starts[idx])
        y[idx] += partial
    return y


def spmv_rows(matrix: CSRMatrix, x: np.ndarray, y: np.ndarray, rows: np.ndarray) -> np.ndarray:
    """Vectorized SpMV restricted to a subset of rows (one thread's share)."""
    _check_operands(matrix, x, y)
    rows = np.asarray(rows, dtype=np.int64)
    lengths = matrix.row_lengths[rows]
    nonzero_rows = rows[lengths > 0]
    if nonzero_rows.size == 0:
        return y
    starts = matrix.rowptr[nonzero_rows]
    lens = matrix.row_lengths[nonzero_rows]
    idx = np.repeat(starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens) + np.arange(
        int(lens.sum())
    )
    products = matrix.values[idx] * x[matrix.colidx[idx]]
    bounds = np.concatenate(([0], np.cumsum(lens)[:-1]))
    y[nonzero_rows] += np.add.reduceat(products, bounds)
    return y


def flops(matrix: CSRMatrix) -> int:
    """Floating-point operations of one SpMV: 2 per nonzero."""
    return 2 * matrix.nnz


def _check_operands(matrix: CSRMatrix, x: np.ndarray, y: np.ndarray) -> None:
    if x.shape != (matrix.num_cols,):
        raise ValueError(f"x must have shape ({matrix.num_cols},), got {x.shape}")
    if y.shape != (matrix.num_rows,):
        raise ValueError(f"y must have shape ({matrix.num_rows},), got {y.shape}")
