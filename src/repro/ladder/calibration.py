"""Calibrated error bounds of the fidelity ladder.

Error metric
------------
All bounds speak about the *floored relative error* of a predicted L2
miss count against the tier-3 (simulated) ground truth::

    err = |prediction - truth| / max(truth, stream_lines)

where ``stream_lines`` is the matrix's total streaming line count of one
iteration (:attr:`repro.core.analytic.StreamMisses.total`).  The floor
keeps the metric meaningful where the truth is near zero (a class-1
matrix with a handful of cold misses would otherwise make any surrogate
look infinitely wrong while being off by a rounding error's worth of
traffic); ``stream_lines`` is the natural unit — it is the traffic one
whole pass over the matrix costs.

Bound composition
-----------------
* Tier 2 vs tier 3 is a *model* error (Method B's analytic envelope and
  average-scaling assumption vs the set-associative simulation); it is
  calibrated per paper class, worst-cased over the generator collection
  and the advisor's policy grid by ``bench_fidelity --calibrate``.
* Tier 0 adds the fit-test surrogate's error *vs tier 2*, also calibrated
  per class — but refined per request: when every x fit test is deep
  (clearly inside or clearly outside capacity by ``fit_margin``), the
  all-or-nothing approximation agrees with the profile query and the
  small ``tier0_deep_bound`` applies instead.
* Tier 1 adds the sampling error vs tier 2: ``z`` standard errors of the
  sampled estimate (known after the queries run) plus a calibrated bias
  slack for whole-line inclusion correlation.
* Tier 3 is the ground truth: bound 0.

Classes are evaluated *per policy* (the class depends on the way split);
a request's bound is the worst over its policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.classification import MatrixClass


@dataclass(frozen=True)
class LadderCalibration:
    """Calibrated constants behind the per-tier error bounds."""

    #: per-class floored relative error of tier 2 vs the simulation,
    #: worst-cased over the generator collection and the policy grid.
    #: The class-2 constant is dominated by the no-sector-cache
    #: configuration, where the scale-factor interference model can
    #: predict x thrashing while the set-associative cache keeps the
    #: frequently-touched x lines resident — the analytic tiers are
    #: honest about being order-of-magnitude surrogates there.
    model_bound: dict[str, float] = field(default_factory=lambda: {
        MatrixClass.CLASS1.value: 0.65,
        MatrixClass.CLASS2.value: 7.00,
        MatrixClass.CLASS3A.value: 0.65,
        MatrixClass.CLASS3B.value: 0.95,
    })
    #: per-class extra error of the tier-0 fit test vs tier 2
    tier0_bound: dict[str, float] = field(default_factory=lambda: {
        MatrixClass.CLASS1.value: 0.05,
        MatrixClass.CLASS2.value: 0.30,
        MatrixClass.CLASS3A.value: 0.40,
        MatrixClass.CLASS3B.value: 0.40,
    })
    #: tier-0 term when every x fit test is deep (see :meth:`deep_fit`)
    tier0_deep_bound: float = 0.15
    #: a fit test is "deep" when the scaled x footprint is below
    #: ``fit_margin * capacity`` or above ``capacity / fit_margin``
    fit_margin: float = 0.5
    #: a-priori extra error of tier 1 vs tier 2 (before its queries run)
    tier1_apriori: float = 0.25
    #: posterior tier-1 term: z standard errors plus bias slack
    sampling_z: float = 3.0
    sampling_bias: float = 0.10
    #: default SHARDS sampling rate of tier 1
    sampling_rate: float = 0.1

    def model_term(self, cls_value: str) -> float:
        return self.model_bound[cls_value]

    def tier0_term(self, cls_value: str, deep: bool) -> float:
        if deep:
            return min(self.tier0_deep_bound, self.tier0_bound[cls_value])
        return self.tier0_bound[cls_value]

    def deep_fit(self, scaled_x_lines: float, capacity_lines: int) -> bool:
        """True when the all-or-nothing fit test is unambiguous."""
        return (
            scaled_x_lines <= self.fit_margin * capacity_lines
            or scaled_x_lines * self.fit_margin >= capacity_lines
        )


DEFAULT_CALIBRATION = LadderCalibration()
