"""Per-tier cost models of the fidelity ladder.

Each tier's wall-clock cost is predicted from the request's dims alone —
the escalation loop consults these *before* evaluating a tier, and the
fidelity metadata reports predicted next to measured cost so drift is
visible.  The model is a calibrated affine form::

    seconds = base + per_reference * nnz + per_policy_reference * nnz * P

with ``P`` the number of policies priced.  ``nnz`` is the right size
proxy: every trace-bound stage (x-only trace build, stack pass, full
kernel trace, simulation) is linear-ish in the reference count, which is
itself proportional to ``nnz`` (rows and density enter through it).  The
``per_policy_reference`` term captures work that repeats per policy —
zero for the analytic tiers, whose single stack pass serves every way
split, and dominant for the simulation, which thresholds (and for a
fresh sector assignment re-simulates) per configuration.

Constants are calibrated by ``benchmarks/bench_fidelity.py`` on the
reference container; absolute seconds move with the host, but the
*ratios* between tiers — which is what tier selection needs — are stable.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TierCostModel:
    """Affine cost model of one tier, keyed on nnz and policy count."""

    base_seconds: float
    per_reference_seconds: float
    per_policy_reference_seconds: float = 0.0

    def predict_seconds(self, nnz: int, num_policies: int = 1) -> float:
        return (
            self.base_seconds
            + self.per_reference_seconds * nnz
            + self.per_policy_reference_seconds * nnz * max(num_policies, 1)
        )


#: tier -> cost model, calibrated on the bench_fidelity reference matrices.
DEFAULT_COST_MODELS: dict[int, TierCostModel] = {
    # closed forms: dict building and a handful of divisions per policy
    0: TierCostModel(base_seconds=2e-5, per_reference_seconds=0.0,
                     per_policy_reference_seconds=2e-11),
    # x-only trace build + sampled (rate~0.1) stack pass
    1: TierCostModel(base_seconds=2e-3, per_reference_seconds=1.3e-7),
    # x-only trace build + exact single-period stack pass
    2: TierCostModel(base_seconds=3e-3, per_reference_seconds=7e-7),
    # full kernel trace, L1+L2 set-associative passes, per-policy queries
    3: TierCostModel(base_seconds=1e-2, per_reference_seconds=5.5e-6,
                     per_policy_reference_seconds=2.5e-7),
}
