"""Tier 0: Method B's closed forms alone (dims-only, no trace, no pass).

The paper makes a microseconds-cheap answer available: all of Section 3.1
(the streaming-miss line counts and the class taxonomy) and the
Section-3.2.2 scaling factors ``s1``/``s2`` are closed forms over
``(num_rows, num_cols, nnz)``.  This tier evaluates the miss model with
the stack-pass term replaced by its analytic envelope:

* the streamed arrays contribute exactly their line counts when they
  cannot be retained (identically to the full Method B — the branching is
  literally :func:`repro.core.analytic.method_b_per_array`, shared with
  tiers 1 and 2);
* the ``x`` vector — whose misses Method B prices with a reuse-distance
  profile — is priced by the fit criterion instead: scaling distances by
  ``s`` against capacity ``C`` is the same comparison as unscaled
  distances against ``C/s``, so ``x`` is approximated as fully retained
  when ``s * x_lines <= C`` and fully streamed otherwise.

``classify`` answers are *exact* (the taxonomy is already closed-form);
``predict``/``advise`` answers are approximations whose error the ladder
bounds per request (see :mod:`repro.ladder.calibration`).

This module is also the engine of the service's degraded mode —
:mod:`repro.resilience.degraded` re-exports it — so degraded answers and
ladder tier-0 answers are one implementation.  Everything works on
:class:`MatrixDims` — the three integers that determine every byte count
— so named collection matrices only pay one materialization ever (dims
are memoized) and inline matrices pay none.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.advisor import Recommendation, recommend_from_predictions
from ..core.analytic import (
    method_b_per_array,
    method_b_scale_factors,
    stream_misses,
)
from ..core.classification import classify
from ..machine.a64fx import A64FX
from ..spmv.sector_policy import SectorPolicy

# Mirrors repro.spmv.csr element sizes (8-byte values/rowptr/vectors,
# 4-byte column indices); asserted against CSRMatrix in the tests.
_VALUE_BYTES = 8
_COLIDX_BYTES = 4
_ROWPTR_BYTES = 8
_VECTOR_BYTES = 8


@dataclass(frozen=True)
class MatrixDims:
    """The three integers every closed-form term depends on.

    Exposes the same ``*_bytes`` properties as
    :class:`~repro.spmv.csr.CSRMatrix`, so :func:`repro.core.classification.classify`
    and :func:`repro.core.analytic.stream_misses` accept it unchanged.
    """

    num_rows: int
    num_cols: int
    nnz: int

    def __post_init__(self) -> None:
        if self.num_rows < 0 or self.num_cols < 0 or self.nnz < 0:
            raise ValueError("matrix dimensions must be non-negative")

    @property
    def values_bytes(self) -> int:
        return _VALUE_BYTES * self.nnz

    @property
    def colidx_bytes(self) -> int:
        return _COLIDX_BYTES * self.nnz

    @property
    def rowptr_bytes(self) -> int:
        return _ROWPTR_BYTES * (self.num_rows + 1)

    @property
    def x_bytes(self) -> int:
        return _VECTOR_BYTES * self.num_cols

    @property
    def y_bytes(self) -> int:
        return _VECTOR_BYTES * self.num_rows

    @property
    def matrix_bytes(self) -> int:
        return self.values_bytes + self.colidx_bytes + self.rowptr_bytes

    @property
    def total_bytes(self) -> int:
        return self.matrix_bytes + self.x_bytes + self.y_bytes

    @classmethod
    def of(cls, matrix) -> "MatrixDims":
        """Dims of anything CSR-shaped (a :class:`CSRMatrix`, typically)."""
        return cls(int(matrix.num_rows), int(matrix.num_cols), int(matrix.nnz))


def num_cmgs(machine: A64FX, num_threads: int) -> int:
    return -(-num_threads // machine.cores_per_cmg)


def x_lines(dims: MatrixDims, line: int) -> int:
    return -(-dims.x_bytes // line)


def x_fit_misses(
    dims: MatrixDims, scale: float, capacity_lines: int, line: int
) -> int:
    """Analytic surrogate of ``MethodB.x_misses``: all-or-nothing retention."""
    lines = x_lines(dims, line)
    return 0 if lines * scale <= capacity_lines else lines


def predict_policy(
    dims: MatrixDims, machine: A64FX, num_threads: int, policy: SectorPolicy
) -> dict[str, int]:
    """Per-array L2 miss counts of one policy, stack pass replaced by fit tests.

    The branching is the shared
    :func:`~repro.core.analytic.method_b_per_array`; only the injected x
    pricing differs from the full Method B (fit criterion instead of the
    reuse-profile query).
    """
    policy.validate(machine)
    streams = stream_misses(dims, machine.line_size)
    s1, s2 = method_b_scale_factors(dims)
    line = machine.line_size
    per_array = method_b_per_array(
        dims,
        machine,
        num_cmgs(machine, num_threads),
        streams,
        s1,
        s2,
        lambda scale, capacity: x_fit_misses(dims, scale, capacity, line),
        policy,
    )
    return {k: int(v) for k, v in per_array.items()}


def closed_classify(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    way_options: list[int], name: str,
) -> dict:
    """The ``classify`` wire result — exact, the taxonomy is closed-form."""
    cmgs = num_cmgs(machine, num_threads)
    return {
        "name": name,
        "num_cmgs": cmgs,
        "classes": {
            str(ways): classify(dims, machine, ways, cmgs).value
            for ways in way_options
        },
    }


def closed_predict(
    dims: MatrixDims, machine: A64FX, num_threads: int,
    policies: list[dict], name: str,
) -> dict:
    """The ``predict`` wire result with analytic x terms (same shape)."""
    predictions = []
    for entry in policies:
        policy = SectorPolicy.from_dict(entry)
        per_array = predict_policy(dims, machine, num_threads, policy)
        predictions.append({
            "policy": policy.to_dict(),
            "l2_misses": sum(per_array.values()),
            "per_array": per_array,
        })
    return {"name": name, "method": "B", "predictions": predictions}


def closed_advise(
    dims: MatrixDims,
    machine: A64FX,
    num_threads: int,
    way_options: list[int],
    consider_isolate_x: bool = True,
    min_sector1_ways_with_prefetch: int = 4,
) -> Recommendation:
    """An approximate ``advise`` recommendation from closed forms alone.

    The candidate field, ranking rule and tie-break are the shared
    :func:`~repro.core.advisor.recommend_from_predictions`; only the miss
    counts feeding the performance model are the analytic surrogates.
    """
    if not way_options:
        raise ValueError("way_options must not be empty")
    streams = stream_misses(dims, machine.line_size)
    cls = classify(dims, machine, max(way_options), num_cmgs(machine, num_threads))
    line = machine.line_size
    return recommend_from_predictions(
        machine=machine,
        num_threads=num_threads,
        way_options=way_options,
        consider_isolate_x=consider_isolate_x,
        min_ways=min_sector1_ways_with_prefetch,
        matrix_class=cls,
        nnz=dims.nnz,
        streams=streams,
        per_array_fn=lambda policy: predict_policy(
            dims, machine, num_threads, policy
        ),
        x_misses_fn=lambda scale, capacity: x_fit_misses(
            dims, scale, capacity, line
        ),
    )


# ----------------------------------------------------------------------
# canonical-task adapter (what the daemon and the ladder engine call)
# ----------------------------------------------------------------------

#: (collection, scale, name) -> MatrixDims; named specs are materialized
#: once ever to learn their dims, inline matrices never are.
_named_dims: dict[tuple[str, int, str], MatrixDims] = {}


def dims_from_task(task: dict, machine: A64FX) -> MatrixDims:
    """Dims of a canonical task's matrix without a pool evaluation."""
    spec = task["matrix"]
    if spec["kind"] == "delta":
        # an edit batch moves nnz by its insert/delete counts and nothing
        # else the closed forms read — the base dims do the heavy lifting
        base = dims_from_task({"matrix": spec["base"], "setup": task["setup"]},
                              machine)
        nnz = base.nnz
        for batch in spec["batches"]:
            nnz += len(batch.get("inserts", ())) - len(batch.get("deletes", ()))
        return MatrixDims(base.num_rows, base.num_cols, max(nnz, 0))
    if spec["kind"] == "csr":
        rowptr = spec["rowptr"]
        nnz = int(rowptr[-1]) if rowptr else 0
        return MatrixDims(spec["num_rows"], spec["num_cols"], nnz)
    if spec["kind"] == "coo":
        return MatrixDims(spec["num_rows"], spec["num_cols"], len(spec["rows"]))
    key = (spec["collection"], task["setup"]["scale"], spec["name"])
    dims = _named_dims.get(key)
    if dims is None:
        from ..matrices.collection import collection

        for candidate in collection(spec["collection"], machine=machine):
            if candidate.name == spec["name"]:
                dims = MatrixDims.of(candidate.materialize())
                break
        else:
            raise KeyError(f"matrix {spec['name']!r} not in the "
                           f"{spec['collection']!r} collection")
        _named_dims[key] = dims
    return dims


def answer_task(task: dict, machine: A64FX, name: str) -> dict | None:
    """The tier-0 wire result of a canonical task, or ``None``.

    ``None`` means the endpoint has no analytic surrogate (``sweep``
    measures the simulator); the daemon's degraded path turns that into a
    structured 503.
    """
    endpoint = task["endpoint"]
    if endpoint in ("sweep", "optimize"):
        # sweep measures the simulator; optimize needs the real pattern
        # (closed forms are permutation-invariant) — neither degrades
        return None
    dims = dims_from_task(task, machine)
    num_threads = task["setup"]["num_threads"]
    if endpoint == "classify":
        return closed_classify(dims, machine, num_threads,
                               task["way_options"], name)
    if endpoint == "predict":
        return closed_predict(dims, machine, num_threads,
                              task["policies"], name)
    if endpoint == "advise":
        return closed_advise(
            dims, machine, num_threads, task["way_options"],
            consider_isolate_x=task["consider_isolate_x"],
            min_sector1_ways_with_prefetch=task["min_sector1_ways_with_prefetch"],
        ).to_dict()
    raise ValueError(f"unknown endpoint {endpoint!r}")
