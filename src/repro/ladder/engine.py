"""The fidelity ladder: SLO-aware tier selection and escalation.

``Ladder.answer`` evaluates one classify/predict/advise request at the
cheapest tier whose *a-priori* error bound could satisfy the requested
accuracy SLO, then escalates tier by tier until the *posterior* bound
(known once the tier's queries ran — tier 1's statistical bound depends
on the sampled miss counts) actually meets it, returning the answer
together with ``(tier, bound, cost)``:

====  ===========================================  ==================
tier  engine                                       bound
====  ===========================================  ==================
0     closed forms (:mod:`repro.ladder.tier0`)     calibrated + fit test
1     SHARDS-sampled stack pass (:class:`SampledMethodB`)  statistical
2     exact single-period stack pass (:class:`MethodB`)    calibrated model
3     set-associative simulation (:mod:`repro.cachesim`)   0 (ground truth)
====  ===========================================  ==================

Bounds are floored relative errors against tier-3 ground truth (see
:mod:`repro.ladder.calibration` for the metric and the composition).
``classify`` is closed-form exact, so it always answers at tier 0 with
bound 0.  With no SLO the ladder answers at ``min(2, max_tier)`` — the
historical default fidelity — so legacy requests are byte-identical.

Each tier evaluation runs under an ``obs`` span named ``ladder.tier<N>``,
so per-tier self seconds flow into the service's per-phase metrics and
the absence of a ``method_b.stack_pass`` span is observable evidence that
a cheap tier answered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.advisor import SectorAdvisor, recommend_from_predictions
from ..core.analytic import method_b_scale_factors, stream_misses
from ..core.classification import MatrixClass, classify
from ..core.method_b import MethodB
from ..machine.a64fx import A64FX
from ..obs.tracer import span as obs_span
from ..spmv.csr import CSRMatrix
from ..spmv.sector_policy import (
    SectorPolicy,
    listing1_policy,
    no_sector_cache,
)
from .calibration import DEFAULT_CALIBRATION, LadderCalibration
from .cost import DEFAULT_COST_MODELS, TierCostModel
from .tier0 import (
    MatrixDims,
    closed_advise,
    closed_classify,
    closed_predict,
    dims_from_task,
    num_cmgs,
    x_lines,
)
from .tiers import SampledMethodB, simulated_predict, simulated_recommendation

TIERS = (0, 1, 2, 3)


@dataclass(frozen=True)
class _QueryPoint:
    """One x-pricing site of a request: its class and profile query.

    ``scale``/``capacity`` are ``None`` when the shared branching prices x
    as exactly zero (the retained no-partitioning case) — every analytic
    tier then agrees by construction and the point contributes no
    surrogate error.
    """

    cls_value: str
    scale: float | None
    capacity: int | None


@dataclass(frozen=True)
class LadderAnswer:
    """One answered request: the wire result plus fidelity metadata."""

    result: dict
    endpoint: str
    tier: int
    error_bound: float
    cost_seconds: float
    predicted_cost_seconds: float
    tiers_tried: tuple[int, ...]
    tier_bounds: tuple[float, ...]
    accuracy_slo: float | None
    slo_met: bool

    @property
    def escalations(self) -> int:
        return max(0, len(self.tiers_tried) - 1)

    def fidelity(self) -> dict:
        """JSON fidelity metadata (the service envelope's ``fidelity``)."""
        return {
            "tier": self.tier,
            "error_bound": self.error_bound,
            "accuracy_slo": self.accuracy_slo,
            "slo_met": self.slo_met,
            "cost_seconds": self.cost_seconds,
            "predicted_cost_seconds": self.predicted_cost_seconds,
            "tiers_tried": list(self.tiers_tried),
            "tier_bounds": list(self.tier_bounds),
            "escalations": self.escalations,
        }


@dataclass(frozen=True)
class _Request:
    """Normalized inputs of one ladder evaluation."""

    endpoint: str
    dims: MatrixDims
    name: str
    materialize: Callable[[], CSRMatrix]
    policy_dicts: tuple[dict, ...] = ()
    way_options: tuple[int, ...] = ()
    consider_isolate_x: bool = True
    min_ways: int = 4


class Ladder:
    """Four-tier prediction engine with cost estimates and error bounds."""

    def __init__(
        self,
        setup,
        calibration: LadderCalibration = DEFAULT_CALIBRATION,
        cost_models: dict[int, TierCostModel] | None = None,
        sampling_rate: float | None = None,
    ) -> None:
        self.setup = setup
        self.machine: A64FX = setup.machine()
        self.calibration = calibration
        self.cost_models = dict(DEFAULT_COST_MODELS if cost_models is None
                                else cost_models)
        self.sampling_rate = (calibration.sampling_rate if sampling_rate is None
                              else sampling_rate)

    # -- public API ----------------------------------------------------
    def answer(
        self,
        endpoint: str,
        dims: MatrixDims,
        materialize: Callable[[], CSRMatrix],
        *,
        name: str,
        accuracy: float | None = None,
        max_tier: int = 3,
        policies: list[dict] | None = None,
        way_options: list[int] | None = None,
        consider_isolate_x: bool = True,
        min_sector1_ways_with_prefetch: int = 4,
    ) -> LadderAnswer:
        """Answer one request at the cheapest SLO-satisfying tier.

        ``accuracy`` is the floored-relative-error SLO (``None`` means
        "the historical default fidelity": tier ``min(2, max_tier)``);
        ``max_tier`` caps escalation.  ``policies`` (canonical policy
        dicts) parameterize ``predict``; ``way_options`` & friends
        parameterize ``classify``/``advise``.
        """
        if endpoint not in ("classify", "predict", "advise"):
            raise ValueError(f"no ladder for endpoint {endpoint!r}")
        if max_tier not in TIERS:
            raise ValueError(f"max_tier must be one of {TIERS}")
        if accuracy is not None and accuracy <= 0:
            raise ValueError("accuracy SLO must be positive")
        request = _Request(
            endpoint=endpoint,
            dims=dims,
            name=name,
            materialize=_memoize(materialize),
            policy_dicts=tuple(policies or ()),
            way_options=tuple(way_options or ()),
            consider_isolate_x=consider_isolate_x,
            min_ways=min_sector1_ways_with_prefetch,
        )
        if endpoint == "classify":
            # closed-form exact: bound 0 satisfies every SLO at tier 0
            started = time.perf_counter()
            with obs_span("ladder.tier0", endpoint=endpoint):
                result, _ = self._evaluate(0, request)
            cost = time.perf_counter() - started
            return LadderAnswer(
                result=result, endpoint=endpoint, tier=0, error_bound=0.0,
                cost_seconds=cost,
                predicted_cost_seconds=self.predicted_cost(0, dims.nnz, 1),
                tiers_tried=(0,), tier_bounds=(0.0,),
                accuracy_slo=accuracy, slo_met=True,
            )
        return self._escalate(request, accuracy, max_tier)

    def answer_task(self, task: dict, name: str,
                    materialize: Callable[[], CSRMatrix]) -> LadderAnswer:
        """Adapter from a canonical service task (see service.protocol)."""
        endpoint = task["endpoint"]
        dims = dims_from_task(task, self.machine)
        kwargs: dict = {}
        if endpoint == "predict":
            kwargs["policies"] = task["policies"]
        elif endpoint in ("classify", "advise"):
            kwargs["way_options"] = task["way_options"]
        if endpoint == "advise":
            kwargs["consider_isolate_x"] = task["consider_isolate_x"]
            kwargs["min_sector1_ways_with_prefetch"] = (
                task["min_sector1_ways_with_prefetch"]
            )
        return self.answer(
            endpoint, dims, materialize, name=name,
            accuracy=task.get("accuracy"),
            max_tier=task.get("max_tier", 3),
            **kwargs,
        )

    def predicted_cost(self, tier: int, nnz: int, num_policies: int) -> float:
        return self.cost_models[tier].predict_seconds(nnz, num_policies)

    # -- bounds --------------------------------------------------------
    def _query_points(self, request: _Request) -> tuple[_QueryPoint, ...]:
        dims, machine = request.dims, self.machine
        cmgs = num_cmgs(machine, self.setup.num_threads)
        s1, s2 = method_b_scale_factors(dims)
        line = machine.line_size

        def point(ways: int, scale_override: float | None = None) -> _QueryPoint:
            cls = classify(dims, machine, ways, cmgs).value
            if ways > 0:
                n0, _ = machine.l2.partition_lines(ways)
                return _QueryPoint(cls, scale_override or s1, n0)
            total = machine.l2.capacity_lines
            working = dims.x_bytes + (dims.total_bytes - dims.x_bytes) // cmgs
            if working > total * line:
                return _QueryPoint(cls, s2, total)
            return _QueryPoint(cls, None, None)

        points = []
        if request.endpoint == "predict":
            for entry in request.policy_dicts:
                policy = SectorPolicy.from_dict(entry)
                points.append(point(policy.l2_sector1_ways))
        else:  # advise: the candidate field's query points
            points.append(point(no_sector_cache().l2_sector1_ways))
            for ways in request.way_options:
                if ways >= request.min_ways:
                    points.append(point(listing1_policy(ways).l2_sector1_ways))
            top_cls = classify(dims, machine, max(request.way_options), cmgs)
            if request.consider_isolate_x and top_cls in (
                MatrixClass.CLASS3A, MatrixClass.CLASS3B
            ):
                for ways in request.way_options:
                    if ways >= request.min_ways:
                        points.append(point(ways, scale_override=1.0))
        return tuple(points)

    def _floor(self, dims: MatrixDims) -> int:
        return max(1, stream_misses(dims, self.machine.line_size).total)

    def apriori_bound(self, tier: int, request: _Request) -> float:
        """Worst-case bound of a tier before evaluating it."""
        if tier >= 3:
            return 0.0
        cal = self.calibration
        line = self.machine.line_size
        worst = 0.0
        for pt in self._query_points(request):
            term = cal.model_term(pt.cls_value)
            if pt.scale is not None:
                if tier == 1:
                    term += cal.tier1_apriori
                elif tier == 0:
                    deep = cal.deep_fit(
                        x_lines(request.dims, line) * pt.scale, pt.capacity
                    )
                    term += cal.tier0_term(pt.cls_value, deep)
            worst = max(worst, term)
        return worst

    def _posterior_bound(self, tier: int, request: _Request,
                         model: SampledMethodB | None) -> float:
        """Bound of a tier once its queries ran (tightens tier 1)."""
        if tier != 1 or model is None:
            return self.apriori_bound(tier, request)
        cal = self.calibration
        floor = self._floor(request.dims)
        worst = 0.0
        for pt in self._query_points(request):
            term = cal.model_term(pt.cls_value)
            if pt.scale is not None:
                se = model.x_misses_error(pt.scale, pt.capacity)
                term += cal.sampling_z * se / floor + cal.sampling_bias
            worst = max(worst, term)
        return worst

    # -- escalation ----------------------------------------------------
    def _escalate(self, request: _Request, accuracy: float | None,
                  max_tier: int) -> LadderAnswer:
        allowed = [t for t in TIERS if t <= max_tier]
        if accuracy is None:
            allowed = [min(2, max_tier)]
        tried: list[int] = []
        bounds: list[float] = []
        total_cost = 0.0
        result: dict = {}
        posterior = 0.0
        tier = allowed[-1]
        for index, candidate in enumerate(allowed):
            last = index == len(allowed) - 1
            if (accuracy is not None and not last
                    and self.apriori_bound(candidate, request) > accuracy):
                continue  # this tier cannot satisfy the SLO: skip past it
            started = time.perf_counter()
            with obs_span(f"ladder.tier{candidate}", endpoint=request.endpoint):
                result, model = self._evaluate(candidate, request)
            total_cost += time.perf_counter() - started
            posterior = self._posterior_bound(candidate, request, model)
            tried.append(candidate)
            bounds.append(posterior)
            tier = candidate
            if accuracy is None or posterior <= accuracy or last:
                break
        return LadderAnswer(
            result=result,
            endpoint=request.endpoint,
            tier=tier,
            error_bound=posterior,
            cost_seconds=total_cost,
            predicted_cost_seconds=self.predicted_cost(
                tier, request.dims.nnz,
                max(1, len(request.policy_dicts) or len(request.way_options)),
            ),
            tiers_tried=tuple(tried),
            tier_bounds=tuple(bounds),
            accuracy_slo=accuracy,
            slo_met=accuracy is None or posterior <= accuracy,
        )

    # -- tier evaluation -----------------------------------------------
    def _evaluate(
        self, tier: int, request: _Request
    ) -> tuple[dict, SampledMethodB | None]:
        threads = self.setup.num_threads
        if request.endpoint == "classify":
            return closed_classify(
                request.dims, self.machine, threads,
                list(request.way_options), request.name,
            ), None
        if request.endpoint == "predict":
            return self._evaluate_predict(tier, request)
        return self._evaluate_advise(tier, request)

    def _evaluate_predict(
        self, tier: int, request: _Request
    ) -> tuple[dict, SampledMethodB | None]:
        threads = self.setup.num_threads
        if tier == 0:
            return closed_predict(
                request.dims, self.machine, threads,
                list(request.policy_dicts), request.name,
            ), None
        matrix = request.materialize()
        if tier == 3:
            return simulated_predict(
                matrix, self.machine, self.setup.sim_config(),
                list(request.policy_dicts), matrix.name,
            ), None
        if tier == 1:
            model: SampledMethodB | MethodB = SampledMethodB(
                matrix, self.machine, num_threads=threads,
                rate=self.sampling_rate,
            )
        else:
            model = MethodB(matrix, self.machine, num_threads=threads,
                            iterations=self.setup.iterations)
        predictions = []
        for entry in request.policy_dicts:
            prediction = model.predict(SectorPolicy.from_dict(entry))
            predictions.append({
                "policy": prediction.policy.to_dict(),
                "l2_misses": int(prediction.l2_misses),
                "per_array": {k: int(v)
                              for k, v in prediction.per_array.items()},
            })
        result = {"name": matrix.name, "method": "B",
                  "predictions": predictions}
        return result, (model if tier == 1 else None)

    def _evaluate_advise(
        self, tier: int, request: _Request
    ) -> tuple[dict, SampledMethodB | None]:
        threads = self.setup.num_threads
        if tier == 0:
            return closed_advise(
                request.dims, self.machine, threads,
                list(request.way_options),
                consider_isolate_x=request.consider_isolate_x,
                min_sector1_ways_with_prefetch=request.min_ways,
            ).to_dict(), None
        matrix = request.materialize()
        if tier == 2:
            advisor = SectorAdvisor(
                self.machine,
                num_threads=threads,
                way_options=tuple(request.way_options),
                consider_isolate_x=request.consider_isolate_x,
                min_sector1_ways_with_prefetch=request.min_ways,
            )
            return advisor.recommend(matrix).to_dict(), None
        cmgs = num_cmgs(self.machine, threads)
        cls = classify(matrix, self.machine, max(request.way_options), cmgs)
        if tier == 3:
            return simulated_recommendation(
                matrix, self.machine, self.setup.sim_config(), threads,
                tuple(request.way_options), request.consider_isolate_x,
                request.min_ways, cls,
            ).to_dict(), None
        model = SampledMethodB(
            matrix, self.machine, num_threads=threads, rate=self.sampling_rate
        )
        recommendation = recommend_from_predictions(
            machine=self.machine,
            num_threads=threads,
            way_options=tuple(request.way_options),
            consider_isolate_x=request.consider_isolate_x,
            min_ways=request.min_ways,
            matrix_class=cls,
            nnz=matrix.nnz,
            streams=stream_misses(matrix, self.machine.line_size),
            per_array_fn=lambda policy: model.predict(policy).per_array,
            x_misses_fn=model.x_misses,
        )
        return recommendation.to_dict(), model


def _memoize(materialize: Callable[[], CSRMatrix]) -> Callable[[], CSRMatrix]:
    cache: list[CSRMatrix] = []

    def cached() -> CSRMatrix:
        if not cache:
            cache.append(materialize())
        return cache[0]

    return cached


def tier2_apriori_bound(task: dict, machine: A64FX, setup,
                        calibration: LadderCalibration = DEFAULT_CALIBRATION,
                        ) -> float:
    """Tier-2 bound of a canonical task from dims alone (event-loop cheap).

    The daemon uses this to decide whether a cached tier-2 result (stored
    under the plain request key by legacy and ladder requests alike)
    satisfies a ladder request's SLO without any evaluation.  ``classify``
    tasks are closed-form exact: bound 0.
    """
    endpoint = task["endpoint"]
    if endpoint == "classify":
        return 0.0
    ladder = Ladder(setup, calibration=calibration)
    dims = dims_from_task(task, machine)
    request = _Request(
        endpoint=endpoint,
        dims=dims,
        name="",
        materialize=lambda: (_ for _ in ()).throw(RuntimeError("dims only")),
        policy_dicts=tuple(task.get("policies") or ()),
        way_options=tuple(task.get("way_options") or ()),
        consider_isolate_x=task.get("consider_isolate_x", True),
        min_ways=task.get("min_sector1_ways_with_prefetch", 4),
    )
    return ladder.apriori_bound(2, request)
