"""Tiers 1 and 3 of the fidelity ladder.

Tier 1 (:class:`SampledMethodB`) is Method B with the exact single-period
stack pass replaced by a SHARDS-sampled one
(:func:`repro.reuse.sampling.spatial_sample_profile`): the x-only trace is
built exactly as Method B builds it, but only the hash-sampled fraction of
cache lines goes through the stack pass, so the pass costs roughly
``rate`` of tier 2's.  The analytic envelope around the x term — the
streamed-array branching — is byte-identical to tiers 0 and 2 (it is the
shared :func:`repro.core.analytic.method_b_per_array`).

Tier 3 adapters evaluate the set-associative cache simulation
(:mod:`repro.cachesim`) — the model's ground truth — in the ladder's wire
shapes.  ``predict`` reports simulated refill counts per policy;
``advise`` ranks the same candidate field as the other tiers but with
simulated events feeding the performance model.  Isolate-x candidates
need a second simulator instance (the sector *assignment* differs, which
the simulator bakes into its grouping).
"""

from __future__ import annotations

import numpy as np

from ..cachesim.hierarchy import SimConfig, SpMVCacheSim
from ..core.advisor import PolicyChoice, Recommendation
from ..core.analytic import (
    method_b_per_array,
    method_b_scale_factors,
    stream_misses,
)
from ..core.classification import MatrixClass
from ..core.method_a import MissPrediction
from ..core.trace import x_only_trace
from ..machine.a64fx import A64FX
from ..machine.perfmodel import PerformanceModel
from ..obs.tracer import count as obs_count
from ..obs.tracer import span as obs_span
from ..parallel.interleave import interleave
from ..reuse.sampling import SpatialSampledProfile, spatial_sample_profile
from ..spmv.csr import CSRMatrix
from ..spmv.schedule import RowSchedule, static_schedule
from ..spmv.sector_policy import (
    SectorPolicy,
    isolate_x_policy,
    listing1_policy,
    no_sector_cache,
)

#: Sector-1 assignment of the isolate-x candidates (Section 3.1).
ISOLATE_X_ARRAYS = ("values", "colidx", "rowptr", "y")


class SampledMethodB:
    """Tier 1: Method B priced from a SHARDS-sampled stack pass."""

    def __init__(
        self,
        matrix: CSRMatrix,
        machine: A64FX,
        num_threads: int = 1,
        schedule: RowSchedule | None = None,
        rate: float = 0.1,
        interleave_policy: str = "mcs",
    ) -> None:
        if matrix.nnz == 0:
            raise ValueError("method B requires a non-empty matrix")
        self.matrix = matrix
        self.machine = machine
        self.num_threads = num_threads
        self.rate = rate
        if schedule is None:
            schedule = static_schedule(matrix, num_threads)
        with obs_span("sampled_b.trace_build", matrix=matrix.name,
                      threads=num_threads):
            per_thread = x_only_trace(
                matrix, None, schedule, line_size=machine.line_size
            )
            merged = interleave(per_thread, interleave_policy)
        cmgs = (merged.threads // machine.cores_per_cmg).astype(np.int64)
        self.num_cmgs_used = int(cmgs.max()) + 1 if len(merged) else 1
        with obs_span("sampled_b.sample_pass", rate=rate,
                      references=len(merged)):
            self.sampled: SpatialSampledProfile = spatial_sample_profile(
                merged.lines, cmgs, rate=rate, periodic=True
            )
        self.s1, self.s2 = method_b_scale_factors(matrix)
        self._streams = stream_misses(matrix, machine.line_size)

    def x_misses(self, scale: float, capacity_lines: int) -> int:
        """Estimated misses of x references (rounded expectation)."""
        obs_count("sampled_b.profile_queries")
        return int(round(self.sampled.misses(capacity_lines, scale)))

    def x_misses_error(self, scale: float, capacity_lines: int) -> float:
        """Standard error of :meth:`x_misses` at the same query point."""
        return self.sampled.standard_error(capacity_lines, scale)

    def predict(self, policy: SectorPolicy) -> MissPrediction:
        """Predicted L2 misses of one steady-state iteration (estimated)."""
        policy.validate(self.machine)
        per_array = method_b_per_array(
            self.matrix,
            self.machine,
            self.num_cmgs_used,
            self._streams,
            self.s1,
            self.s2,
            self.x_misses,
            policy,
        )
        return MissPrediction(
            l2_misses=sum(per_array.values()),
            per_array=per_array,
            method="B",
            policy=policy,
        )


# ----------------------------------------------------------------------
# Tier 3: the cache simulation as ground truth
# ----------------------------------------------------------------------

def build_sim(
    matrix: CSRMatrix,
    machine: A64FX,
    base_config: SimConfig,
    sector1_arrays: tuple[str, ...] | None = None,
) -> SpMVCacheSim:
    """A simulator for one sector assignment (Listing-1 by default)."""
    config = base_config
    if sector1_arrays is not None:
        config = SimConfig(
            num_threads=base_config.num_threads,
            iterations=base_config.iterations,
            l1_prefetch_distance=base_config.l1_prefetch_distance,
            l2_prefetch_distance=base_config.l2_prefetch_distance,
            interleave_policy=base_config.interleave_policy,
            sector1_arrays=sector1_arrays,
            periodic=base_config.periodic,
        )
    return SpMVCacheSim(matrix, machine, config)


def simulated_predict(
    matrix: CSRMatrix,
    machine: A64FX,
    base_config: SimConfig,
    policies: list[dict],
    name: str,
) -> dict:
    """The ``predict`` wire result from simulated events (ground truth).

    Same shape as the Method-B result; ``method`` is ``"sim"`` and
    ``l2_misses`` is the simulator's refill count (``per_array`` breaks it
    down by triggering array, including prefetch-triggered fills, so the
    entries sum to ``l2_misses`` like the analytic tiers').
    """
    sims: dict[frozenset, SpMVCacheSim] = {}
    predictions = []
    for entry in policies:
        policy = SectorPolicy.from_dict(entry)
        assignment = (
            frozenset(policy.sector1_arrays)
            if (policy.l2_enabled or policy.l1_enabled)
            else frozenset(base_config.sector1_arrays)
        )
        sim = sims.get(assignment)
        if sim is None:
            sim = build_sim(matrix, machine, base_config, tuple(sorted(assignment)))
            sims[assignment] = sim
        events = sim.events(policy)
        per_array = {
            k: int(v) for k, v in events.per_array_l2_misses.items() if v
        }
        predictions.append({
            "policy": policy.to_dict(),
            "l2_misses": int(events.l2_refill),
            "per_array": per_array,
        })
    return {"name": name, "method": "sim", "predictions": predictions}


def simulated_recommendation(
    matrix: CSRMatrix,
    machine: A64FX,
    base_config: SimConfig,
    num_threads: int,
    way_options,
    consider_isolate_x: bool,
    min_ways: int,
    matrix_class: MatrixClass,
) -> Recommendation:
    """The advisor's candidate field ranked by *simulated* events.

    The candidate enumeration (baseline, Listing-1 ways, class-gated
    isolate-x, the ``min_ways`` prefetch gate) and the
    ``(seconds, ways)`` ranking mirror
    :func:`repro.core.advisor.recommend_from_predictions`; only the events
    feeding the performance model come from the simulation instead of the
    analytic surrogate.
    """
    if not way_options:
        raise ValueError("way_options must not be empty")
    perf = PerformanceModel(machine)
    sim = build_sim(matrix, machine, base_config)

    def choice(sim: SpMVCacheSim, policy: SectorPolicy) -> PolicyChoice:
        events = sim.events(policy)
        est = perf.estimate(matrix, events, num_threads)
        return PolicyChoice(
            policy=policy,
            predicted_l2_misses=int(events.l2_refill),
            predicted_seconds=est.seconds,
        )

    baseline = choice(sim, no_sector_cache())
    candidates = [baseline]
    for ways in way_options:
        if ways < min_ways:
            continue
        candidates.append(choice(sim, listing1_policy(ways)))
    if consider_isolate_x and matrix_class in (
        MatrixClass.CLASS3A, MatrixClass.CLASS3B
    ):
        isolate_sim = build_sim(matrix, machine, base_config, ISOLATE_X_ARRAYS)
        for ways in way_options:
            if ways < min_ways:
                continue
            candidates.append(choice(isolate_sim, isolate_x_policy(ways)))
    best = min(
        candidates,
        key=lambda c: (c.predicted_seconds, c.policy.l2_sector1_ways),
    )
    return Recommendation(
        best=best,
        baseline=baseline,
        candidates=tuple(candidates),
        matrix_class=matrix_class,
    )
