"""Method C: the fidelity ladder (tiered predictions with error bounds).

Four tiers answer the same classify/predict/advise questions at
increasing cost and fidelity — closed forms (tier 0), a SHARDS-sampled
stack pass (tier 1), the exact single-period stack pass (tier 2, the
historical default), and the set-associative cache simulation (tier 3,
ground truth).  :class:`Ladder` picks the cheapest tier whose error bound
satisfies a requested accuracy SLO and escalates until it is met.
"""

from .calibration import DEFAULT_CALIBRATION, LadderCalibration
from .cost import DEFAULT_COST_MODELS, TierCostModel
from .engine import TIERS, Ladder, LadderAnswer, tier2_apriori_bound
from .tier0 import (
    MatrixDims,
    answer_task,
    closed_advise,
    closed_classify,
    closed_predict,
    dims_from_task,
    predict_policy,
    x_fit_misses,
)
from .tiers import (
    SampledMethodB,
    build_sim,
    simulated_predict,
    simulated_recommendation,
)

__all__ = [
    "DEFAULT_CALIBRATION",
    "DEFAULT_COST_MODELS",
    "Ladder",
    "LadderAnswer",
    "LadderCalibration",
    "MatrixDims",
    "SampledMethodB",
    "TIERS",
    "TierCostModel",
    "answer_task",
    "build_sim",
    "closed_advise",
    "closed_classify",
    "closed_predict",
    "dims_from_task",
    "predict_policy",
    "simulated_predict",
    "simulated_recommendation",
    "tier2_apriori_bound",
    "x_fit_misses",
]
