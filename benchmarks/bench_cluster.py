"""Sharded advisor cluster round-trips (gateway + replicas vs. one daemon).

Runs the in-process :class:`repro.cluster.ClusterHarness` (consistent-hash
gateway in front of N replica daemons) and measures what the sharding
actually buys and costs:

* **warm batch throughput** — a full collection streamed through
  ``POST /batch``, every answer a memory-tier hit on its owning replica;
* **gateway overhead** — warm single-request latency through the gateway
  vs. straight to a replica (one extra HTTP hop + ring lookup);
* **scaling** — warm throughput of gateway + 3 replicas vs. a single
  daemon.  The >= 2x assertion only runs with >= 4 cores: on a 1-core
  container every replica shares the same CPU and the measurement is
  scheduler contention, not sharding.

Script mode feeds CI and the committed ``BENCH_cluster.json``::

    PYTHONPATH=src python benchmarks/bench_cluster.py --json BENCH_cluster.json
    PYTHONPATH=src python benchmarks/bench_cluster.py --check

``--check`` is the correctness gauntlet (core-count independent):
routed answers byte-identical to a direct single daemon, a replica
killed mid-burst loses zero requests, and after a cache-cold restart the
rebalanced keys are served by peer warm-cache fill, not re-evaluation.
"""

import argparse
import json
import os
import sys
import time

import pytest

from repro.analysis.report import canonical_json
from repro.cluster import ClusterHarness
from repro.matrices.collection import collection
from repro.service import ServiceClient, ServiceConfig, ServiceThread

SETUP = {"num_threads": 8, "scale": 16}
REPLICAS = 3
WINDOW = 8
MATRICES = 8  # of the 12 in the "tiny" collection


def _names(limit=MATRICES):
    return [spec.name for spec in collection("tiny")[:limit]]


def _items(names):
    return [{"name": name, "collection": "tiny"} for name in names]


def _batch(client, names, window=WINDOW):
    """One streamed batch; returns (per-item lines, summary dict)."""
    lines = list(client.batch("advise", _items(names), window=window,
                              setup=SETUP))
    return lines[:-1], lines[-1]["batch"]


def _direct_answers(names, tmp_dir):
    """name -> (key, canonical result JSON) from one plain daemon."""
    config = ServiceConfig(jobs=1, cache_dir=str(tmp_dir))
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        answers = {}
        for name in names:
            envelope = client.advise(name=name, collection="tiny", **SETUP)
            answers[name] = (envelope["key"],
                            canonical_json(envelope["result"]))
        client.close()
    return answers


# -- pytest benches ------------------------------------------------------


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("bench_cluster_cache")
    with ClusterHarness(replicas=REPLICAS, jobs=1,
                        cache_root=cache_root) as harness:
        client = harness.client(timeout=120.0)
        _batch(client, _names())  # prime every replica's memory tier
        yield harness, client
        client.close()


def test_bench_cluster_warm_batch(benchmark, cluster):
    """Warm matrices/second of a streamed batch across the ring."""
    _, client = cluster
    names = _names()
    lines, summary = benchmark(lambda: _batch(client, names))
    assert summary["errors"] == 0
    assert all(line["cached"] == "memory" for line in lines)
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["replicas"] = REPLICAS
    benchmark.extra_info["window"] = WINDOW
    benchmark.extra_info["matrices_per_second"] = len(names) / elapsed


def test_bench_gateway_overhead(benchmark, cluster):
    """Warm single-request latency through the gateway vs. to a replica."""
    harness, client = cluster
    name = _names()[0]
    envelope = benchmark(
        lambda: client.advise(name=name, collection="tiny", **SETUP)
    )
    assert envelope["cached"] == "memory"
    # direct hit on the owning replica for the overhead delta
    owner = harness.gateway.membership.owner(envelope["key"])
    direct = ServiceClient(owner.host, owner.port, timeout=120.0)
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        direct.advise(name=name, collection="tiny", **SETUP)
    direct_seconds = (time.perf_counter() - t0) / reps
    direct.close()
    benchmark.extra_info["direct_seconds"] = direct_seconds
    benchmark.extra_info["gateway_overhead_seconds"] = (
        benchmark.stats.stats.mean - direct_seconds
    )


def test_bench_cluster_scaling(benchmark, cluster, tmp_path):
    """Warm throughput of gateway + replicas vs. one daemon.

    Only asserted with the cores to earn it (see the module docstring);
    elsewhere the measured ratio still lands in ``extra_info``.
    """
    _, client = cluster
    names = _names()
    _, summary = benchmark(lambda: _batch(client, names))
    assert summary["errors"] == 0
    cluster_rps = len(names) / benchmark.stats.stats.mean

    config = ServiceConfig(jobs=1, cache_dir=str(tmp_path / "single"))
    with ServiceThread(config) as (host, port):
        single = ServiceClient(host, port, timeout=120.0)
        for name in names:  # prime
            single.advise(name=name, collection="tiny", **SETUP)
        t0 = time.perf_counter()
        for name in names:
            single.advise(name=name, collection="tiny", **SETUP)
        single_rps = len(names) / (time.perf_counter() - t0)
        single.close()

    scaling = cluster_rps / single_rps
    benchmark.extra_info["cluster_rps"] = cluster_rps
    benchmark.extra_info["single_rps"] = single_rps
    benchmark.extra_info["scaling"] = scaling
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"scaling assertion needs >= 4 cores, host has {cores}")
    assert scaling >= 2.0, (
        f"{REPLICAS} replicas gained only {scaling:.2f}x over one daemon "
        f"on a {cores}-core host"
    )


# -- script mode: correctness gauntlet + JSON emitter --------------------


def _check_cluster(tmp_root, window=4):
    """Byte identity, kill-mid-burst, and peer-fill proof; returns stats."""
    names = _names()
    direct = _direct_answers(names, tmp_root / "direct")
    stats = {}
    with ClusterHarness(replicas=REPLICAS, jobs=1,
                        cache_root=tmp_root / "cluster",
                        gateway_config={"probe_interval_seconds": 0.3},
                        ) as harness:
        client = harness.client(timeout=120.0)

        # 1. routed answers are byte-identical to the single daemon's
        lines, summary = _batch(client, names, window=window)
        assert summary["errors"] == 0, summary
        for line in lines:
            key, expected = direct[line["name"]]
            assert line["key"] == key, (line["name"], line["key"], key)
            assert canonical_json(line["result"]) == expected, line["name"]
        stats["byte_identical"] = len(lines)

        # 2. kill a replica mid-burst: the stream still yields every
        # answer (failover re-routes the dead replica's keys), and the
        # answers still match the single daemon byte for byte
        stream = client.batch("advise", _items(names), window=window,
                              setup=SETUP)
        got = []
        for line in stream:
            got.append(line)
            if len(got) == 2:
                harness.kill_replica(0)
        *item_lines, tail = got
        assert tail["batch"]["errors"] == 0, tail
        assert len(item_lines) == len(names)
        for line in item_lines:
            key, expected = direct[line["name"]]
            assert line["key"] == key
            assert canonical_json(line["result"]) == expected, line["name"]
        metrics = client.metrics()
        assert metrics["exhausted"] == 0, metrics
        stats["killed_mid_burst_lost"] = metrics["exhausted"]
        stats["failovers"] = metrics["failovers"]

        # a full pass while the replica is down: the interim owners now
        # evaluate and cache the remapped keys (a warm mid-burst batch
        # can finish before the kill bites, so step 2 may not have)
        lines, summary = _batch(client, names, window=window)
        assert summary["errors"] == 0, summary

        # 3. cache-cold restart: keys remapping home again must be
        # served by peer warm-cache fill from the interim owners
        harness.restart_replica(0, clear_cache=True)
        deadline = time.monotonic() + 15.0
        while client.metrics()["membership"]["alive"] < REPLICAS:
            assert time.monotonic() < deadline, "replica never readmitted"
            time.sleep(0.2)
        lines, summary = _batch(client, names, window=window)
        assert summary["errors"] == 0, summary
        peer_served = sum(line["cached"] == "peer" for line in lines)
        peer_fill = {}
        for index in range(REPLICAS):
            for outcome, count in harness.replica_client(index).metrics()[
                    "peer_fill"].items():
                peer_fill[outcome] = peer_fill.get(outcome, 0) + count
        assert peer_served > 0, "no rebalanced key was peer-filled"
        assert peer_fill.get("hit", 0) >= peer_served, peer_fill
        stats["peer_served"] = peer_served
        stats["peer_fill"] = peer_fill
        client.close()
    return stats


def _measure_throughput(tmp_root):
    """Warm requests/second: one daemon vs. gateway + replicas."""
    names = _names()
    results = {}

    config = ServiceConfig(jobs=1, cache_dir=str(tmp_root / "single_bench"))
    with ServiceThread(config) as (host, port):
        single = ServiceClient(host, port, timeout=120.0)
        for name in names:
            single.advise(name=name, collection="tiny", **SETUP)
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            for name in names:
                single.advise(name=name, collection="tiny", **SETUP)
            best = min(best, time.perf_counter() - t0)
        results["single_warm_rps"] = len(names) / best
        single.close()

    with ClusterHarness(replicas=REPLICAS, jobs=1,
                        cache_root=tmp_root / "cluster_bench") as harness:
        client = harness.client(timeout=120.0)
        t0 = time.perf_counter()
        _batch(client, names)
        results["cluster_cold_seconds"] = time.perf_counter() - t0
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            lines, summary = _batch(client, names)
            assert summary["errors"] == 0
            best = min(best, time.perf_counter() - t0)
        results["cluster_warm_rps"] = len(names) / best
        client.close()

    results["scaling"] = (
        results["cluster_warm_rps"] / results["single_warm_rps"]
    )
    return results


def main(argv=None):
    import tempfile
    from pathlib import Path

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write throughput + correctness measurements here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="correctness-only smoke mode: byte identity, kill-mid-burst "
             "zero lost, peer-fill proof; skip timing",
    )
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    payload = {"replicas": REPLICAS, "window": WINDOW,
               "matrices": MATRICES, "cores": cores}
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        tmp_root = Path(tmp)
        if args.check:
            checks = _check_cluster(tmp_root)
            payload["checks"] = checks
            print(
                f"OK: {checks['byte_identical']} routed answers byte-"
                f"identical to one daemon; mid-burst kill lost "
                f"{checks['killed_mid_burst_lost']} of {MATRICES} "
                f"({checks['failovers']} failover(s)); "
                f"{checks['peer_served']} rebalanced key(s) peer-filled"
            )
            if not args.json:
                return 0
        timings = _measure_throughput(tmp_root)
        payload.update(timings)
    scaling_asserted = cores >= 4
    payload["scaling_asserted"] = scaling_asserted
    if scaling_asserted:
        assert payload["scaling"] >= 2.0, (
            f"cluster gained only {payload['scaling']:.2f}x over one "
            f"daemon on a {cores}-core host"
        )
    print(
        f"warm rps: single {payload['single_warm_rps']:.0f}, "
        f"cluster {payload['cluster_warm_rps']:.0f} "
        f"({payload['scaling']:.2f}x, "
        f"{'asserted' if scaling_asserted else f'not asserted on {cores} core(s)'})"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
