"""Figure 3: SpMV speedup distributions per sector configuration.

The timed kernel maps simulated events to modelled runtimes across the
configuration grid for one matrix.
"""

from repro.experiments import figure3_series, headline_numbers, render_figure3
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import banded


def test_figure3_speedup_distributions(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()
    perf = PerformanceModel(machine)
    matrix = banded(3_000, 120, 40, seed=0)
    record = parallel_records[0]

    def estimate_grid():
        return [
            perf.estimate(matrix, record.events(l2w, 0), 48).gflops
            for l2w in (0, 2, 3, 4, 5, 6)
        ]

    benchmark.pedantic(estimate_grid, rounds=5, iterations=1, warmup_rounds=0)
    series = figure3_series(parallel_records)
    numbers = headline_numbers(parallel_records)
    with capsys.disabled():
        print()
        print(render_figure3(series))
        print(
            f"headline: median {numbers['median_speedup']:.3f}x, "
            f"max {numbers['max_speedup']:.2f}x, "
            f">=1.1x for {numbers['fraction_10pct_or_more']:.0%} "
            "(paper: median ~1.05x, max ~1.6x, >=1.1x for ~25 %)"
        )
