"""Table 3: L2 miss-prediction error (MAPE), parallel SpMV, 48 threads.

The timed kernel is the concurrent (interleaved 48-thread) method-A
prediction for one matrix — the paper's headline modelling workload.
"""

from repro.core import CacheMissModel
from repro.experiments import accuracy_rows, l1_accuracy, render_accuracy_table
from repro.matrices import banded
from repro.spmv import listing1_policy


def test_table3_parallel_accuracy(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()
    matrix = banded(3_000, 120, 40, seed=0)

    def predict_parallel():
        model = CacheMissModel(matrix, machine, num_threads=48)
        return model.predict(listing1_policy(5), "A")

    benchmark.pedantic(predict_parallel, rounds=3, iterations=1, warmup_rounds=0)
    rows = accuracy_rows(parallel_records, machine, parallel=True)
    l1_row = l1_accuracy(parallel_records, machine, parallel=True)
    with capsys.disabled():
        print()
        print(render_accuracy_table(
            rows, "Table 3: L2 miss prediction error, parallel SpMV (48 threads)"
        ))
        print(f"L1 (Sec. 4.5.4): A {l1_row.method_a}  B {l1_row.method_b}")
        print("paper: A 15.1 % at 2 ways falling to ~2.6 % at 6 ways; "
              "A 3.5 % / B 10.8 % without sector cache")
