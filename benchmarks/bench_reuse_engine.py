"""Reuse-distance engine throughput (the machinery behind Section 4.5.1).

Compares the vectorized CDQ stack processing (the production path) against
the Fenwick-tree sweep and the Kim et al. grouped stack on identical
traces, reporting references per second.
"""

import numpy as np
import pytest

from repro.reuse import (
    reuse_distances,
    reuse_distances_fenwick,
    reuse_distances_kim,
)


def _trace(n=200_000, lines=20_000, groups=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, lines, n), rng.integers(0, groups, n)


def test_cdq_throughput(benchmark):
    trace, groups = _trace()
    rd = benchmark(lambda: reuse_distances(trace, groups))
    assert rd.shape == trace.shape


def test_fenwick_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_fenwick(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


def test_kim_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_kim(trace, groups, group_size=64),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


@pytest.mark.parametrize("n", [50_000, 400_000])
def test_cdq_scales_near_linearithmic(benchmark, n):
    trace, groups = _trace(n=n)
    benchmark.pedantic(
        lambda: reuse_distances(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )
