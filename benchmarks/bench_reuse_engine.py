"""Reuse-distance engine throughput (the machinery behind Section 4.5.1).

Compares the vectorized CDQ stack processing (the production path) against
the Fenwick-tree sweep and the Kim et al. grouped stack on identical
traces, reporting references per second.  ``bench_model_sweep`` covers the
layer above: matrices/second of a 16-configuration model sweep, serial vs.
``--jobs 4``, plus the warm per-policy query vs. the full-mask reference.
"""

import time

import numpy as np
import pytest

from repro.core import MethodA
from repro.experiments import ExperimentSetup, run_collection, run_collection_parallel
from repro.machine import scaled_machine
from repro.matrices import random_uniform
from repro.matrices.collection import collection
from repro.reuse import (
    reuse_distances,
    reuse_distances_fenwick,
    reuse_distances_kim,
)
from repro.spmv import listing1_policy


def _trace(n=200_000, lines=20_000, groups=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, lines, n), rng.integers(0, groups, n)


def test_cdq_throughput(benchmark):
    trace, groups = _trace()
    rd = benchmark(lambda: reuse_distances(trace, groups))
    assert rd.shape == trace.shape


def test_fenwick_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_fenwick(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


def test_kim_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_kim(trace, groups, group_size=64),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


@pytest.mark.parametrize("n", [50_000, 400_000])
def test_cdq_scales_near_linearithmic(benchmark, n):
    trace, groups = _trace(n=n)
    benchmark.pedantic(
        lambda: reuse_distances(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )


# -- bench_model_sweep: the 16-configuration model evaluation ------------

#: 16 sector configurations: 6 L2 way splits alone + 5 of them crossed
#: with 2 L1 splits (the Figure 2/3 sweep shape).
SWEEP_SETUP = ExperimentSetup(
    scale=16,
    num_threads=48,
    l2_way_options=(0, 2, 3, 4, 5, 6),
    l1_way_options=(0, 1, 2),
)
SWEEP_MATRICES = 6


def _sweep_specs():
    return collection("tiny", machine=SWEEP_SETUP.machine())[:SWEEP_MATRICES]


@pytest.mark.parametrize("jobs", [1, 4])
def test_bench_model_sweep(benchmark, jobs):
    """Matrices/second of the 16-policy sweep, serial vs. ``--jobs 4``."""
    specs = _sweep_specs()

    def run():
        if jobs == 1:
            return run_collection(specs, SWEEP_SETUP, cache_dir=None)
        result = run_collection_parallel(
            specs, SWEEP_SETUP, cache_dir=None, jobs=jobs
        )
        assert not result.failures
        return result.records

    records = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(records) == len(specs)
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["configurations"] = 16
    benchmark.extra_info["matrices_per_second"] = len(specs) / elapsed


def test_bench_predict_query_vs_full_mask(benchmark):
    """Warm per-policy ``predict()`` vs. the pre-change full-mask sweep."""
    matrix = random_uniform(20_000, 8, seed=1)
    model = MethodA(matrix, scaled_machine(16), num_threads=48)
    policy = listing1_policy(5)
    model.predict(policy)  # pay the stack pass + profile build once
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        reference = model._predict_masked(policy)
    mask_seconds = (time.perf_counter() - t0) / reps
    result = benchmark(lambda: model.predict(policy))
    assert result.l2_misses == reference.l2_misses
    query_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["mask_path_seconds"] = mask_seconds
    benchmark.extra_info["query_speedup"] = mask_seconds / query_seconds
