"""Reuse-distance engine throughput (the machinery behind Section 4.5.1).

Compares the vectorized CDQ stack processing (the production path) against
the Fenwick-tree sweep and the Kim et al. grouped stack on identical
traces, reporting references per second.  ``bench_model_sweep`` covers the
layer above: matrices/second of a 16-configuration model sweep, serial vs.
``--jobs 4``, plus the warm per-policy query vs. the full-mask reference.
``bench_periodic`` measures the single-period steady-state engine against
the doubled-trace oracle (equality is asserted; timings and peak memory go
to ``extra_info``).

Run as a script for the JSON emitter / CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_reuse_engine.py --json BENCH_reuse.json
    PYTHONPATH=src python benchmarks/bench_reuse_engine.py --check --jobs 2
"""

import argparse
import dataclasses
import json
import os
import sys
import time

import numpy as np
import pytest

from repro.core import MethodA, MethodB
from repro.obs import Tracer
from repro.experiments import ExperimentSetup, run_collection, run_collection_parallel
from repro.experiments.common import peak_rss_bytes, record_fingerprint
from repro.machine import scaled_machine
from repro.matrices import banded, random_uniform
from repro.matrices.collection import collection
from repro.reuse import (
    reuse_distances,
    reuse_distances_fenwick,
    reuse_distances_kim,
)
from repro.spmv import listing1_policy
from repro.spmv.sector_policy import no_sector_cache


def _trace(n=200_000, lines=20_000, groups=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, lines, n), rng.integers(0, groups, n)


def test_cdq_throughput(benchmark):
    trace, groups = _trace()
    rd = benchmark(lambda: reuse_distances(trace, groups))
    assert rd.shape == trace.shape


def test_fenwick_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_fenwick(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


def test_kim_throughput(benchmark):
    trace, groups = _trace(n=30_000)
    rd = benchmark.pedantic(
        lambda: reuse_distances_kim(trace, groups, group_size=64),
        rounds=2, iterations=1, warmup_rounds=0,
    )
    assert rd.shape == trace.shape


@pytest.mark.parametrize("n", [50_000, 400_000])
def test_cdq_scales_near_linearithmic(benchmark, n):
    trace, groups = _trace(n=n)
    benchmark.pedantic(
        lambda: reuse_distances(trace, groups),
        rounds=2, iterations=1, warmup_rounds=0,
    )


# -- bench_model_sweep: the 16-configuration model evaluation ------------

#: 16 sector configurations: 6 L2 way splits alone + 5 of them crossed
#: with 2 L1 splits (the Figure 2/3 sweep shape).
SWEEP_SETUP = ExperimentSetup(
    scale=16,
    num_threads=48,
    l2_way_options=(0, 2, 3, 4, 5, 6),
    l1_way_options=(0, 1, 2),
)
SWEEP_MATRICES = 6


def _sweep_specs():
    return collection("tiny", machine=SWEEP_SETUP.machine())[:SWEEP_MATRICES]


@pytest.mark.parametrize("jobs", [1, 4])
def test_bench_model_sweep(benchmark, jobs):
    """Matrices/second of the 16-policy sweep, serial vs. ``--jobs 4``.

    The pool-speedup comparison is core-count-aware: on a container with
    fewer than 4 cores a 4-worker pool measures scheduler contention, not
    the sweep engine, so the parallel variant is skipped there and the
    speedup is only asserted when the cores to earn it exist.
    """
    cores = os.cpu_count() or 1
    if jobs > 1 and cores < 4:
        pytest.skip(f"pool speedup needs >= 4 cores, this host has {cores}")
    specs = _sweep_specs()

    def run():
        if jobs == 1:
            return run_collection(specs, SWEEP_SETUP, cache_dir=None)
        result = run_collection_parallel(
            specs, SWEEP_SETUP, cache_dir=None, jobs=jobs
        )
        assert not result.failures
        return result.records

    records = benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    assert len(records) == len(specs)
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["jobs"] = jobs
    benchmark.extra_info["configurations"] = 16
    benchmark.extra_info["matrices_per_second"] = len(specs) / elapsed
    if jobs > 1:
        t0 = time.perf_counter()
        run_collection(specs, SWEEP_SETUP, cache_dir=None)
        serial_seconds = time.perf_counter() - t0
        speedup = serial_seconds / elapsed
        benchmark.extra_info["pool_speedup"] = speedup
        assert speedup > 1.1, (
            f"{jobs}-worker pool gained only {speedup:.2f}x over serial "
            f"on a {cores}-core host"
        )


# -- bench_periodic: single-period steady state vs. the doubled trace ----

#: stack-pass workloads: (name, matrix factory, method class, threads)
PERIODIC_WORKLOADS = [
    ("methodA_random20k", lambda: random_uniform(20_000, 8, seed=1), MethodA, 48),
    ("methodA_banded40k", lambda: banded(40_000, 64, 6, seed=2), MethodA, 48),
    ("methodB_random20k", lambda: random_uniform(20_000, 8, seed=3), MethodB, 48),
]

#: policies driving both the partitioned and the shared stack passes
PERIODIC_POLICIES = (listing1_policy(5), no_sector_cache())


def _run_stack_passes(method_cls, matrix, num_threads, periodic):
    """One full model evaluation: construction + L2/L1 passes + cold misses."""
    model = method_cls(
        matrix, scaled_machine(16), num_threads=num_threads, periodic=periodic
    )
    out = []
    for policy in PERIODIC_POLICIES:
        out.append(model.predict(policy))
        out.append(model.predict_l1(policy))
    if method_cls is MethodA:
        out.append(model.cold_misses())
    return out


def _prediction_key(result):
    out = []
    for entry in result:
        if isinstance(entry, int):
            out.append(entry)
        else:
            out.append((entry.l2_misses, tuple(sorted(entry.per_array.items()))))
    return out


def _measure_workload(name, factory, method_cls, num_threads, repeats=3):
    """Wall time (best of ``repeats``) and tracemalloc peak of both engines.

    Both measurements ride on :class:`repro.obs.Tracer` spans — the same
    clock and memory accounting the ``--trace`` reports use — so benchmark
    numbers and trace reports stay comparable.
    """
    matrix = factory()
    stats = {}
    for label, periodic in (("oracle", False), ("periodic", True)):
        best = float("inf")
        timer = Tracer()
        for _ in range(repeats):
            with timer.span(label) as sp:
                result = _run_stack_passes(method_cls, matrix, num_threads, periodic)
            best = min(best, sp.seconds)
        with Tracer(memory="tracemalloc") as mem_tracer:
            with mem_tracer.span(label) as mem_span:
                _run_stack_passes(method_cls, matrix, num_threads, periodic)
        stats[label] = {
            "seconds": best,
            "peak_traced_bytes": int(mem_span.mem_peak_bytes),
            "result_key": _prediction_key(result),
        }
    assert stats["periodic"]["result_key"] == stats["oracle"]["result_key"], (
        f"{name}: periodic engine diverged from the doubled-trace oracle"
    )
    for s in stats.values():
        del s["result_key"]
    stats["speedup"] = stats["oracle"]["seconds"] / stats["periodic"]["seconds"]
    stats["memory_ratio"] = (
        stats["oracle"]["peak_traced_bytes"] / stats["periodic"]["peak_traced_bytes"]
    )
    return stats


@pytest.mark.parametrize(
    "name,factory,method_cls,num_threads",
    PERIODIC_WORKLOADS,
    ids=[w[0] for w in PERIODIC_WORKLOADS],
)
def test_bench_periodic_vs_oracle(benchmark, name, factory, method_cls, num_threads):
    """Steady-state engine vs. doubled trace: equal results, lower cost."""
    matrix = factory()
    oracle = _run_stack_passes(method_cls, matrix, num_threads, periodic=False)
    result = benchmark.pedantic(
        lambda: _run_stack_passes(method_cls, matrix, num_threads, periodic=True),
        rounds=2,
        iterations=1,
        warmup_rounds=0,
    )
    assert _prediction_key(result) == _prediction_key(oracle)
    t0 = time.perf_counter()
    _run_stack_passes(method_cls, matrix, num_threads, periodic=False)
    oracle_seconds = time.perf_counter() - t0
    benchmark.extra_info["oracle_seconds"] = oracle_seconds
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["speedup"] = oracle_seconds / benchmark.stats.stats.mean


def test_bench_predict_query_vs_full_mask(benchmark):
    """Warm per-policy ``predict()`` vs. the pre-change full-mask sweep."""
    matrix = random_uniform(20_000, 8, seed=1)
    model = MethodA(matrix, scaled_machine(16), num_threads=48)
    policy = listing1_policy(5)
    model.predict(policy)  # pay the stack pass + profile build once
    reps = 20
    t0 = time.perf_counter()
    for _ in range(reps):
        reference = model._predict_masked(policy)
    mask_seconds = (time.perf_counter() - t0) / reps
    result = benchmark(lambda: model.predict(policy))
    assert result.l2_misses == reference.l2_misses
    query_seconds = benchmark.stats.stats.mean
    benchmark.extra_info["mask_path_seconds"] = mask_seconds
    benchmark.extra_info["query_speedup"] = mask_seconds / query_seconds


# -- script mode: JSON emitter + CI smoke check --------------------------


def _check_sweep_equivalence(jobs):
    """Pooled periodic sweep vs. serial oracle sweep: identical records."""
    setup = ExperimentSetup(
        num_threads=8,
        l2_way_options=(0, 2, 5),
        l1_way_options=(0, 1),
    )
    specs = collection("tiny", machine=setup.machine())[:4]
    serial = run_collection(
        specs, dataclasses.replace(setup, periodic=False), cache_dir=None
    )
    if jobs > 1:
        result = run_collection_parallel(specs, setup, cache_dir=None, jobs=jobs)
        assert not result.failures, result.failures
        pooled = result.records
    else:
        pooled = run_collection(specs, setup, cache_dir=None)
    assert len(pooled) == len(serial)
    mismatches = [
        s.name
        for s, p in zip(serial, pooled)
        if record_fingerprint(s) != record_fingerprint(p)
    ]
    assert not mismatches, f"record fingerprints diverged for {mismatches}"
    return len(serial)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write time + peak-memory measurements (periodic vs oracle) here",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="equality-only smoke mode: assert periodic == oracle, skip timing",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for the sweep check"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    args = parser.parse_args(argv)

    if args.check:
        matrices = _check_sweep_equivalence(args.jobs)
        print(
            f"OK: periodic engine matches the doubled-trace oracle on "
            f"{matrices} matrices (jobs={args.jobs})"
        )
        if not args.json:
            return 0

    payload = {"workloads": {}, "peak_rss_bytes": 0}
    for name, factory, method_cls, num_threads in PERIODIC_WORKLOADS:
        stats = _measure_workload(
            name, factory, method_cls, num_threads, repeats=args.repeats
        )
        payload["workloads"][name] = stats
        print(
            f"{name}: {stats['speedup']:.2f}x faster, "
            f"{stats['memory_ratio']:.2f}x less peak trace memory "
            f"({stats['oracle']['seconds']:.3f}s -> "
            f"{stats['periodic']['seconds']:.3f}s)"
        )
    payload["peak_rss_bytes"] = peak_rss_bytes()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
