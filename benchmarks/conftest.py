"""Shared fixtures for the benchmark harness.

Each bench regenerates one of the paper's tables or figures.  Measurement
bundles are cached on disk (``.repro_cache``), so the first run of the
suite pays the simulation cost and later runs only re-derive the artefacts;
``BENCH_LIMIT`` bounds the matrix count so a cold run stays in minutes.
Set ``REPRO_BENCH_COLLECTION=full`` (and clear the limit with
``REPRO_BENCH_LIMIT=0``) to regenerate the 490-matrix sweep.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import ExperimentSetup, collection_records

BENCH_COLLECTION = os.environ.get("REPRO_BENCH_COLLECTION", "small")
_limit = int(os.environ.get("REPRO_BENCH_LIMIT", "24"))
BENCH_LIMIT = None if _limit <= 0 else _limit
CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro_cache")


@pytest.fixture(scope="session")
def parallel_setup() -> ExperimentSetup:
    return ExperimentSetup(num_threads=48)


@pytest.fixture(scope="session")
def sequential_setup() -> ExperimentSetup:
    return ExperimentSetup(num_threads=1)


@pytest.fixture(scope="session")
def parallel_records(parallel_setup):
    return collection_records(
        BENCH_COLLECTION, parallel_setup, CACHE_DIR, limit=BENCH_LIMIT
    )


@pytest.fixture(scope="session")
def sequential_records(sequential_setup):
    return collection_records(
        BENCH_COLLECTION, sequential_setup, CACHE_DIR, limit=BENCH_LIMIT
    )
