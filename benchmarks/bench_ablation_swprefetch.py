"""Ablation (the paper's future work): software x-prefetch + sector cache.

Software prefetching covers the indirect x accesses hardware prefetchers
cannot; combined with the sector cache the prefetched x lines are also
protected from stream pollution.  Demand misses and modelled speedup are
reported for the four combinations on an x-scattered matrix.
"""

import numpy as np

from repro.analysis import render_table
from repro.cachesim import inject_prefetches, simulate
from repro.cachesim.software_prefetch import inject_x_software_prefetch
from repro.core import spmv_trace
from repro.core.trace import repeat_trace
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import random_uniform
from repro.parallel import interleave
from repro.spmv import listing1_policy, static_schedule


def _events(trace, machine, ways):
    cmgs = (trace.threads // machine.cores_per_cmg).astype(np.int64)
    rd = simulate(trace, machine.l2, listing1_policy(1), cache_ids=cmgs)
    window = trace.iteration == 1
    miss = rd.miss_mask(ways) & window
    demand = int((miss & ~trace.is_prefetch).sum())
    return int(miss.sum()), demand


def test_software_prefetch_ablation(benchmark, capsys, parallel_setup):
    machine = parallel_setup.machine()
    matrix = random_uniform(60_000, 5, seed=13)
    demand_trace = repeat_trace(
        interleave(
            spmv_trace(matrix, None, static_schedule(matrix, 48),
                       line_size=machine.line_size),
            "mcs",
        ),
        2,
    )
    sw_demand = benchmark.pedantic(
        lambda: inject_x_software_prefetch(demand_trace, 16),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    # hardware stream prefetching applies in every configuration
    base_trace = inject_prefetches(demand_trace, 4)
    sw_trace = inject_prefetches(sw_demand, 4)
    perf = PerformanceModel(machine)
    rows = []
    for label, trace, ways in (
        ("baseline", base_trace, 0),
        ("sector 5 ways", base_trace, 5),
        ("sw prefetch", sw_trace, 0),
        ("sw prefetch + sector", sw_trace, 5),
    ):
        total, demand = _events(trace, machine, ways)
        from repro.cachesim import CacheEvents

        est = perf.estimate(
            matrix,
            CacheEvents(l1_refill=total, l2_refill=total,
                        l2_refill_demand=demand,
                        l2_refill_prefetch=total - demand),
            48,
        )
        rows.append((label, total, demand, f"{est.gflops:.1f}"))
    with capsys.disabled():
        print()
        print(render_table(
            ["configuration", "L2 misses", "demand misses", "Gflop/s (model)"],
            rows,
            title="Ablation: software x-prefetch with the sector cache (future work)",
        ))
        print("expected: software prefetching removes x demand misses; the "
              "sector keeps the prefetched lines resident")
