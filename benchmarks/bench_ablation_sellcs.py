"""Ablation (the paper's future work): sector cache with SELL-C-sigma.

Alappat et al. found SELL-C-sigma faster than CSR on the A64FX but never
combined it with the sector cache; the paper names that combination as
future work.  Here both formats' traces run through the same reuse-
distance machinery: misses of the no-sector baseline vs. 5 sector-1 ways,
for CSR and SELL-C-sigma, on a skewed matrix where the format's row
sorting matters.
"""

import numpy as np

from repro.analysis import render_table
from repro.core import spmv_trace
from repro.core.sellcs_trace import sellcs_trace
from repro.core.trace import repeat_trace
from repro.cachesim import simulate
from repro.matrices import power_law
from repro.parallel import interleave
from repro.spmv import listing1_policy, static_schedule
from repro.spmv.sellcs import SellCSigmaMatrix


def _misses(trace_list, machine, ways):
    merged = repeat_trace(interleave(trace_list, "mcs"), 2)
    cmgs = (merged.threads // machine.cores_per_cmg).astype(np.int64)
    rd = simulate(merged, machine.l2, listing1_policy(1), cache_ids=cmgs)
    window = merged.iteration == 1
    return int((rd.miss_mask(ways) & window).sum())


def test_sellcs_sector_cache_ablation(benchmark, capsys, parallel_setup):
    machine = parallel_setup.machine()
    matrix = power_law(24_000, 8.0, exponent=1.8, seed=9)
    sell = benchmark.pedantic(
        lambda: SellCSigmaMatrix.from_csr(matrix, chunk_size=8, sigma=256),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    csr_traces = spmv_trace(
        matrix, None, static_schedule(matrix, 48), line_size=machine.line_size
    )
    sell_traces = sellcs_trace(sell, num_threads=48, line_size=machine.line_size)

    rows = []
    for label, traces in (("CSR", csr_traces), ("SELL-8-256", sell_traces)):
        base = _misses(traces, machine, 0)
        part = _misses(traces, machine, 5)
        rows.append(
            (
                label,
                base,
                part,
                f"{100 * (part - base) / base:+.1f}" if base else "n/a",
            )
        )
    with capsys.disabled():
        print()
        print(render_table(
            ["format", "L2 misses (baseline)", "(5 L2 ways)", "change %"],
            rows,
            title="Ablation: sector cache with SELL-C-sigma (future work of the paper)",
        ))
        print(f"SELL padding ratio: {sell.padding_ratio:.3f}")
