"""Section 4.4: bandwidth utilisation vs. sector-cache speedup.

The paper's reading: the matrices that gain from the sector cache are not
the bandwidth-saturated ones — they sit well below the ~800 GB/s sustain
level and are limited by demand-miss handling latency.
"""

from repro.experiments.bandwidth import render_section44, section44_summary


def test_section44_bandwidth_vs_speedup(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()
    summary = benchmark.pedantic(
        lambda: section44_summary(parallel_records, machine, count=10),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    with capsys.disabled():
        print()
        print(render_section44(parallel_records, machine, count=8))
        print(
            "top-bandwidth set: "
            f"{summary['top_bandwidth_min_gbs']:.0f}-{summary['top_bandwidth_max_gbs']:.0f} GB/s; "
            "top-speedup set: "
            f"{summary['top_speedup_bandwidth_min_gbs']:.0f}-{summary['top_speedup_bandwidth_max_gbs']:.0f} GB/s "
            f"(overlap {summary['overlap_count']:.0f})"
        )
        print("paper: 513-783 GB/s vs 74-376 GB/s, no overlap in the top-20 sets")
