"""Ablation (Section 4.3): prefetch distance vs. small-sector eviction.

The paper confirms the 2-way pathology by reducing the hardware prefetch
distance, after which 2 L2 ways behave like 4.  The same experiment on
the simulated testbed: demand misses of the 2-way sector configuration as
a function of the L2 prefetch distance.
"""

from repro.analysis import render_table
from repro.cachesim import SimConfig, SpMVCacheSim
from repro.matrices import random_uniform
from repro.spmv import listing1_policy


def test_prefetch_distance_ablation(benchmark, capsys, parallel_setup):
    machine = parallel_setup.machine()
    matrix = random_uniform(18_000, 9, seed=2)

    def measure(distance):
        sim = SpMVCacheSim(
            matrix, machine, SimConfig(num_threads=48, l2_prefetch_distance=distance)
        )
        return {
            ways: sim.events(listing1_policy(ways)) for ways in (2, 4)
        }

    benchmark.pedantic(lambda: measure(4), rounds=1, iterations=1, warmup_rounds=0)
    rows = []
    for distance in (1, 2, 4, 8):
        events = measure(distance)
        rows.append(
            (
                f"distance {distance}",
                events[2].l2_refill_demand,
                events[4].l2_refill_demand,
                f"{events[2].l2_refill_demand / max(events[4].l2_refill_demand, 1):.2f}",
            )
        )
    with capsys.disabled():
        print()
        print(render_table(
            ["L2 prefetch", "demand misses @2 ways", "@4 ways", "ratio"],
            rows,
            title="Ablation: prefetch distance vs premature eviction (Sec. 4.3)",
        ))
        print("paper: after reducing the prefetch distance, 2 ways ~= 4 ways")
