"""Figure 4: speedup vs. matrix columns by Section-3.1 class.

The timed kernel is the class computation over the collection (the
classification is the paper's analytical contribution being exercised).
"""

from repro.core import classify
from repro.experiments import class_summary, figure4_points, render_figure4
from repro.matrices import collection, iter_matrices


def test_figure4_speedup_vs_columns(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()
    specs = collection("tiny")

    def classify_collection():
        return [
            classify(m, machine, 5, num_cmgs=4) for m in iter_matrices(specs)
        ]

    benchmark.pedantic(classify_collection, rounds=2, iterations=1, warmup_rounds=0)
    points = figure4_points(parallel_records)
    with capsys.disabled():
        print()
        print(render_figure4(points))
        summary = class_summary(points)
        print("per-class speedup summary:")
        for cls in sorted(summary):
            s = summary[cls]
            print(
                f"  class ({cls}): n={s['count']:.0f} median={s['median']:.3f} "
                f"max={s['max']:.2f} min={s['min']:.2f}"
            )
        print("paper: class (1) within ~5 % of 1.0; class (2) holds the top "
              "speedups; class (3) tapers off with matrix size")
