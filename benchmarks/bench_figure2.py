"""Figure 2: L2 miss change distributions per sector configuration.

The timed kernel is one full sector-configuration sweep on the simulated
testbed (every way split from one reuse-distance analysis).
"""

from repro.cachesim import SimConfig, SpMVCacheSim
from repro.experiments import best_l2_ways, figure2_series, render_figure2
from repro.matrices import banded


def test_figure2_miss_distributions(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()
    matrix = banded(3_000, 120, 40, seed=0)

    def sweep():
        sim = SpMVCacheSim(matrix, machine, SimConfig(num_threads=48))
        return sim.sweep((2, 3, 4, 5, 6), (0,))

    benchmark.pedantic(sweep, rounds=2, iterations=1, warmup_rounds=0)
    series = figure2_series(parallel_records)
    with capsys.disabled():
        print()
        print(render_figure2(series))
        best = best_l2_ways(series)
        print(f"lowest median miss change at {best} L2 ways "
              "(paper: 4-5 ways, typical reduction ~5 %)")
