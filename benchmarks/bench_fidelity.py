"""Fidelity-ladder cost and calibration benchmark (Method C).

Measures, per tier of :class:`repro.ladder.Ladder`, the wall seconds of a
``predict`` answer and its observed floored relative error against the
tier-3 simulated ground truth, over representative generator matrices
covering all four paper classes.  The headline numbers are the cost
ratios on the 20k-row random matrix — tier 0 (closed forms) and tier 1
(SHARDS-sampled stack pass) vs tier 2 (the exact single-period stack
pass, the historical default fidelity) — and the calibration check that
every tier's observed error stays within its reported bound.

Run as a script for the JSON emitter / CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_fidelity.py --json BENCH_fidelity.json
    PYTHONPATH=src python benchmarks/bench_fidelity.py --check

``--check`` relaxes the cost thresholds (tier 0 >= 20x, tier 1 >= 2x
cheaper than tier 2): shared CI runners measure scheduler noise, not the
engine; the committed ``BENCH_fidelity.json`` records the full ratios
(tier 0 >= 100x, tier 1 >= 5x).  The check also boots the advisor daemon
and asserts that a loose accuracy SLO is answered without any stack
pass, via the per-tier ladder counters and per-phase seconds in
``/metrics``.
"""

import argparse
import json
import sys
import time

import pytest

from repro.core.analytic import stream_misses
from repro.core.classification import classify
from repro.experiments import ExperimentSetup
from repro.experiments.common import peak_rss_bytes
from repro.ladder import Ladder, MatrixDims
from repro.matrices import banded, random_uniform
from repro.spmv.sector_policy import SectorPolicy

#: The benchmark's experiment shape: the paper's 48-thread run at the
#: simulator-friendly 1/16 machine scale.
SETUP = ExperimentSetup(scale=16, num_threads=48, iterations=2)

#: L2 way splits priced per matrix (baseline + the two Listing-1 splits
#: the advisor ranks first).
WAY_SPLITS = (0, 2, 5)

#: (factory, headline) workloads spanning the four paper classes under
#: ``SETUP``: banded_n8000 is class 1, random_n20000 class 2 (the
#: headline cost matrix), random_n40000 mixes classes 2/3a across the
#: way splits, random_n80000 is class 3b.
WORKLOADS = (
    (lambda: random_uniform(20_000, 8, seed=1), True),
    (lambda: banded(8_000, 32, 4, seed=1), False),
    (lambda: random_uniform(40_000, 8, seed=4), False),
    (lambda: random_uniform(80_000, 4, seed=9), False),
)

#: Forcing one tier: with no SLO the ladder answers at ``min(2,
#: max_tier)``, so ``max_tier`` alone pins tiers 0-2; an unattainable
#: SLO skips every analytic tier and runs only the simulation.
FORCE_TIER = {
    0: {"max_tier": 0},
    1: {"max_tier": 1},
    2: {"max_tier": 2},
    3: {"max_tier": 3, "accuracy": 1e-9},
}


def _policies():
    return [
        SectorPolicy.from_dict({"l2_sector1_ways": w}).to_dict()
        for w in WAY_SPLITS
    ]


def _policy_key(policy: dict) -> str:
    return json.dumps(policy, sort_keys=True)


def measure_matrix(matrix, repeats: int = 3) -> dict:
    """Per-tier seconds, error bound, and observed error for one matrix.

    Tiers 0-2 report the best of ``repeats`` cold answers (each answer
    rebuilds its model: the cost is the real end-to-end price of that
    fidelity); tier 3, the ground truth, runs once.  Errors are floored
    relative errors of ``l2_misses`` per policy, worst-cased over the
    policy grid — the same metric the calibrated bounds speak about.
    """
    machine = SETUP.machine()
    ladder = Ladder(SETUP)
    dims = MatrixDims.of(matrix)
    floor = max(1, stream_misses(dims, machine.line_size).total)
    cmgs = -(-SETUP.num_threads // machine.cores_per_cmg)
    policies = _policies()

    answers = {}
    seconds = {}
    for tier, forcing in FORCE_TIER.items():
        rounds = 1 if tier == 3 else repeats
        best = float("inf")
        for _ in range(rounds):
            answer = ladder.answer(
                "predict", dims, lambda m=matrix: m, name=matrix.name,
                policies=policies, **forcing,
            )
            assert answer.tier == tier, (
                f"forcing {forcing} answered at tier {answer.tier}"
            )
            best = min(best, answer.cost_seconds)
        answers[tier] = answer
        seconds[tier] = best

    truth = {
        _policy_key(p["policy"]): p["l2_misses"]
        for p in answers[3].result["predictions"]
    }
    tiers = {}
    for tier in (0, 1, 2, 3):
        error = max(
            abs(p["l2_misses"] - truth[_policy_key(p["policy"])])
            / max(truth[_policy_key(p["policy"])], floor)
            for p in answers[tier].result["predictions"]
        )
        tiers[str(tier)] = {
            "seconds": seconds[tier],
            "predicted_seconds": answers[tier].predicted_cost_seconds,
            "error_bound": answers[tier].error_bound,
            "observed_error": error,
            "within_bound": error <= answers[tier].error_bound,
        }
    return {
        "nnz": matrix.nnz,
        "classes": {
            str(w): classify(dims, machine, w, cmgs).value for w in WAY_SPLITS
        },
        "stream_lines_floor": floor,
        "tiers": tiers,
    }


def run_benchmark(repeats: int = 3, verbose: bool = True) -> dict:
    """The full measurement payload (the ``BENCH_fidelity.json`` shape)."""
    payload = {
        "setup": {"scale": SETUP.scale, "num_threads": SETUP.num_threads,
                  "iterations": SETUP.iterations},
        "way_splits": list(WAY_SPLITS),
        "error_metric": "|prediction - truth| / max(truth, stream_lines)",
        "matrices": {},
    }
    for factory, headline in WORKLOADS:
        matrix = factory()
        stats = measure_matrix(matrix, repeats=repeats)
        payload["matrices"][matrix.name] = stats
        if headline:
            t = stats["tiers"]
            payload["headline"] = {
                "matrix": matrix.name,
                "tier0_speedup_vs_tier2": t["2"]["seconds"] / t["0"]["seconds"],
                "tier1_speedup_vs_tier2": t["2"]["seconds"] / t["1"]["seconds"],
                "tier2_seconds": t["2"]["seconds"],
                "tier3_seconds": t["3"]["seconds"],
            }
        if verbose:
            line = "  ".join(
                f"t{tier}: {s['seconds'] * 1e3:.2f}ms "
                f"err={s['observed_error']:.3f}/{s['error_bound']:.3f}"
                for tier, s in sorted(stats["tiers"].items())
            )
            print(f"{matrix.name}: {line}")
    payload["within_bounds"] = all(
        s["within_bound"]
        for stats in payload["matrices"].values()
        for s in stats["tiers"].values()
    )
    payload["peak_rss_bytes"] = peak_rss_bytes()
    return payload


# -- pytest entry points (pytest benchmarks/bench_fidelity.py) -----------


def test_bench_tier_cost_ordering(benchmark):
    """Headline matrix: each cheaper tier is actually cheaper."""
    matrix = WORKLOADS[0][0]()
    stats = benchmark.pedantic(
        lambda: measure_matrix(matrix, repeats=1),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    t = stats["tiers"]
    benchmark.extra_info["tier_seconds"] = {k: s["seconds"] for k, s in t.items()}
    assert t["0"]["seconds"] < t["2"]["seconds"]
    assert t["1"]["seconds"] < t["2"]["seconds"]
    assert t["2"]["seconds"] < t["3"]["seconds"]


@pytest.mark.parametrize(
    "factory", [w[0] for w in WORKLOADS],
    ids=["random20k", "banded8k", "random40k", "random80k"],
)
def test_bench_errors_within_bounds(factory):
    """Every tier's observed error stays inside its reported bound."""
    stats = measure_matrix(factory(), repeats=1)
    for tier, stat in stats["tiers"].items():
        assert stat["within_bound"], (
            f"tier {tier}: observed {stat['observed_error']:.3f} exceeds "
            f"the reported bound {stat['error_bound']:.3f}"
        )


# -- script mode: JSON emitter + CI smoke check --------------------------


def _check_service_loose_slo() -> None:
    """A loose-SLO request must be answered without any stack pass.

    Boots the daemon, sends one ``predict`` with an SLO the class-1
    matrix's tier-0 bound satisfies, and asserts via ``/metrics`` that
    the answer was delivered at tier 0 and that no ``method_b.stack_pass``
    phase ever ran for ``predict``.
    """
    from repro.service import ServiceClient, ServiceConfig, ServiceThread

    matrix = banded(4_000, 16, 4, seed=2)
    thread = ServiceThread(ServiceConfig(jobs=1, cache_dir=None))
    host, port = thread.start()
    try:
        client = ServiceClient(host, port, timeout=120.0)
        client.wait_ready()
        envelope = client.predict(
            matrix=matrix, num_threads=8, scale=16, accuracy=1.0,
        )
        fidelity = envelope["fidelity"]
        assert fidelity["tier"] == 0, fidelity
        assert fidelity["slo_met"], fidelity
        metrics = client.metrics()
        answers = metrics["ladder"]["answers"]["predict"]
        assert answers.get("0", 0) >= 1, metrics["ladder"]
        phases = metrics["evaluation_phase_seconds"].get("predict", {})
        stack_phases = [k for k in phases if "stack_pass" in k]
        assert not stack_phases, f"stack pass ran: {stack_phases}"
        assert any(k.startswith("ladder.tier0") for k in phases), phases
        client.shutdown()
    finally:
        thread.stop()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the per-tier seconds / error / bound payload here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: relaxed cost ratios, errors-within-bounds, "
             "and the loose-SLO no-stack-pass service assertion",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--min-tier0-speedup", type=float, default=None,
        help="required tier-2/tier-0 cost ratio on the headline matrix "
             "(default: 100, or 20 under --check)",
    )
    parser.add_argument(
        "--min-tier1-speedup", type=float, default=None,
        help="required tier-2/tier-1 cost ratio on the headline matrix "
             "(default: 5, or 2 under --check)",
    )
    args = parser.parse_args(argv)
    min_t0 = args.min_tier0_speedup or (20.0 if args.check else 100.0)
    min_t1 = args.min_tier1_speedup or (2.0 if args.check else 5.0)

    started = time.perf_counter()
    payload = run_benchmark(repeats=1 if args.check else args.repeats)
    headline = payload["headline"]
    print(
        f"headline ({headline['matrix']}): tier 0 is "
        f"{headline['tier0_speedup_vs_tier2']:.0f}x and tier 1 "
        f"{headline['tier1_speedup_vs_tier2']:.1f}x cheaper than tier 2 "
        f"({time.perf_counter() - started:.1f}s total)"
    )

    failures = []
    if not payload["within_bounds"]:
        failures.append("an observed error exceeded its reported bound")
    if headline["tier0_speedup_vs_tier2"] < min_t0:
        failures.append(
            f"tier-0 speedup {headline['tier0_speedup_vs_tier2']:.1f}x "
            f"< required {min_t0:g}x"
        )
    if headline["tier1_speedup_vs_tier2"] < min_t1:
        failures.append(
            f"tier-1 speedup {headline['tier1_speedup_vs_tier2']:.1f}x "
            f"< required {min_t1:g}x"
        )
    if args.check:
        _check_service_loose_slo()
        print("OK: loose-SLO predict answered at tier 0, no stack pass ran")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: every tier's observed error is within its reported bound")
    return 0


if __name__ == "__main__":
    sys.exit(main())
