"""Section 4.5.1: runtime overhead of method (A) versus method (B).

The paper reports t_A / t_B of 4.21x (1 thread) and 3.02x (48 threads).
Both methods are timed directly here on the same matrix, sequential and
parallel, and the collection-wide average ratio is reported from the
cached records.
"""

from repro.core import MethodA, MethodB
from repro.experiments import method_overhead
from repro.matrices import banded
from repro.spmv import listing1_policy


def _run_method_a(matrix, machine, threads):
    model = MethodA(matrix, machine, num_threads=threads)
    return model.predict(listing1_policy(5))


def _run_method_b(matrix, machine, threads):
    model = MethodB(matrix, machine, num_threads=threads)
    return model.predict(listing1_policy(5))


def test_overhead_method_a_sequential(benchmark, parallel_setup):
    matrix = banded(3_000, 120, 40, seed=0)
    benchmark.pedantic(
        lambda: _run_method_a(matrix, parallel_setup.machine(), 1),
        rounds=3, iterations=1, warmup_rounds=0,
    )


def test_overhead_method_b_sequential(benchmark, parallel_setup):
    matrix = banded(3_000, 120, 40, seed=0)
    benchmark.pedantic(
        lambda: _run_method_b(matrix, parallel_setup.machine(), 1),
        rounds=3, iterations=1, warmup_rounds=0,
    )


def test_overhead_method_a_parallel(benchmark, parallel_setup):
    matrix = banded(3_000, 120, 40, seed=0)
    benchmark.pedantic(
        lambda: _run_method_a(matrix, parallel_setup.machine(), 48),
        rounds=3, iterations=1, warmup_rounds=0,
    )


def test_overhead_method_b_parallel(benchmark, capsys, parallel_records, parallel_setup):
    matrix = banded(3_000, 120, 40, seed=0)
    benchmark.pedantic(
        lambda: _run_method_b(matrix, parallel_setup.machine(), 48),
        rounds=3, iterations=1, warmup_rounds=0,
    )
    stats = method_overhead(parallel_records)
    with capsys.disabled():
        print()
        print(
            f"collection average t_A/t_B = {stats['mean_ta_over_tb']:.2f}x "
            f"(paper: 4.21x sequential, 3.02x parallel); "
            f"t_A = {stats['mean_ta_seconds']:.2f}s, t_B = {stats['mean_tb_seconds']:.2f}s"
        )
