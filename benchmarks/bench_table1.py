"""Table 1: CSR SpMV Gflop/s of the 18 named matrices, 48 threads.

Regenerates the paper's Table 1 from the synthetic proxies; the timed
kernel is the full per-matrix measurement pipeline (trace synthesis, L1+L2
simulation, performance model) on a representative proxy.
"""

from repro.experiments import ExperimentSetup, measure_matrix, render_table1, run_table1
from repro.matrices.table1 import table1_entry

_SETUP = ExperimentSetup(num_threads=48, l2_way_options=(0,), l1_way_options=(0,))


def test_table1_rows(benchmark, capsys):
    proxy = table1_entry("pwtk").proxy()
    benchmark.pedantic(
        lambda: measure_matrix(proxy, _SETUP), rounds=2, iterations=1, warmup_rounds=0
    )
    rows = run_table1(setup=_SETUP)
    with capsys.disabled():
        print()
        print(render_table1(rows))
        spread = [r.gflops_ours for r in rows]
        print(f"model spread: {min(spread):.1f} - {max(spread):.1f} Gflop/s "
              f"(paper: 5.8 - 117.8)")
