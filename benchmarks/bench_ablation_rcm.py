"""Ablation (Section 4.2): RCM reordering and nonzero-balanced scheduling.

The paper attributes its Table-1 deficits on kkt_power / bundle_adj /
audikw_1 / delaunay_n24 to running without the RCM reordering and
load balancing that Alappat et al. apply.  This bench quantifies both
optimisations on a low-locality matrix.

The RCM before/after miss numbers come from the *optimizer objective* —
:func:`repro.optimize.optimize` restricted to the identity/rcm
strategies, whose confirmation is the exact tier-2 ladder prediction —
so this ablation, the ``/optimize`` endpoint, and ``--exp optimize``
all price a reordering through one shared path.  The scheduling half
(outside the permutation search's scope) still rides on the simulated
testbed and the performance model.
"""

from repro.analysis import render_table
from repro.cachesim import SimConfig, SpMVCacheSim
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import matrix_stats, power_law, rcm_reorder
from repro.optimize import SearchConfig, optimize
from repro.spmv import balanced_schedule, static_schedule


def test_rcm_and_balancing_ablation(benchmark, capsys, parallel_setup):
    machine = parallel_setup.machine()
    perf = PerformanceModel(machine)
    matrix = power_law(30_000, 7.0, exponent=1.7, seed=11)

    # RCM priced by the shared optimizer objective (exact tier-2 confirm)
    result = benchmark.pedantic(
        lambda: optimize(
            matrix, parallel_setup,
            SearchConfig(strategies=("identity", "rcm")),
        ).to_dict(),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    confirmation = result["confirmation"]
    reordered = rcm_reorder(matrix)

    ladder_rows = [
        ("baseline", confirmation["before_misses"], "-"),
        ("RCM", confirmation["after_misses"],
         f"{confirmation['improvement']:.1%}"),
    ]

    sched_rows = []
    for label, m, sched_fn in (
        ("baseline (static)", matrix, static_schedule),
        ("RCM (static)", reordered, static_schedule),
        ("RCM + nnz-balanced", reordered, balanced_schedule),
    ):
        sim = SpMVCacheSim(
            m, machine, SimConfig(num_threads=48), schedule=sched_fn(m, 48)
        )
        events = sim.baseline_events()
        est = perf.estimate(m, events, 48)
        stats = matrix_stats(m)
        sched_rows.append(
            (
                label,
                stats.bandwidth,
                events.l2_refill_demand,
                f"{est.gflops:.1f}",
            )
        )
    with capsys.disabled():
        print()
        print(render_table(
            ["configuration", "L2 misses (tier-2 confirm)", "improvement"],
            ladder_rows,
            title="Ablation: RCM via the optimizer objective "
                  f"(winner: {result['winner']['label']})",
        ))
        print(render_table(
            ["configuration", "pattern bandwidth", "L2 demand misses", "Gflop/s"],
            sched_rows,
            title="Ablation: RCM + load balancing (the Alappat et al. setup)",
        ))
        print("paper: these optimisations explain the Table-1 gaps on "
              "kkt_power / bundle_adj / audikw_1 / delaunay_n24")
