"""Reordering-search benchmark: budgeted ladder screening vs exhaustive.

Measures :func:`repro.optimize.optimize` — the budgeted search that
screens candidates with cheap tier-1 (SHARDS-sampled) ladder answers and
confirms only the winner exactly — against the *exhaustive* oracle that
prices every candidate with the exact tier-2 stack pass.  The headline
numbers are the cost ratio (exhaustive tier-2 seconds / search seconds)
and the oracle agreement: on each generator workload the search's
confirmed winner must match the exhaustive tier-2 winner.

Workloads (at 1/64 machine scale, one CMG):

``shuffled_band``
    A banded matrix hidden behind a random symmetric permutation —
    class 3 with recoverable structure, the search's reason to exist.
``random``
    Uniform random sparsity — no structure to recover; the search must
    not hallucinate an improvement (identity stays the confirmed winner
    unless a reordering genuinely wins exactly).
``banded_gated``
    A clean banded matrix whose x misses the closed forms already price
    at zero — the tier-0 gate must short-circuit the whole search.

Run as a script for the JSON emitter / CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_optimize.py --json BENCH_optimize.json
    PYTHONPATH=src python benchmarks/bench_optimize.py --check

``--check`` asserts oracle agreement, the gate short-circuit, strictly
positive confirmed improvement on the structured workload,
fingerprint-level determinism of repeated searches, and the *predicted*
cost ratio (the deterministic cost models); the wall-clock ratio is
reported but not gated — a loaded shared runner makes it meaningless.
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.experiments import ExperimentSetup
from repro.ladder import Ladder, MatrixDims
from repro.matrices import banded, random_uniform
from repro.optimize import (
    SearchConfig,
    candidates_for,
    optimize,
    optimize_fingerprint,
)
from repro.spmv.sector_policy import SectorPolicy

#: 1/64 machine scale, one CMG: matrices small enough that the exhaustive
#: tier-2 oracle stays benchmark-friendly while all classes are reachable.
SETUP = ExperimentSetup(scale=64, num_threads=8)

CONFIG = SearchConfig(seed=0, budget_seconds=30.0)


def _shuffled_band():
    base = banded(12_000, 24, 6, seed=3)
    perm = np.random.default_rng(7).permutation(base.num_rows).astype(np.int64)
    shuffled = base.permute(perm, perm)
    import dataclasses

    return dataclasses.replace(shuffled, name="shuffled_band")


WORKLOADS = (
    ("shuffled_band", _shuffled_band, True),
    ("random", lambda: random_uniform(12_000, 6, seed=5), False),
    ("banded_gated", lambda: banded(2_000, 16, 4, seed=2), False),
)


def _policies():
    return [
        SectorPolicy.from_dict({"l2_sector1_ways": w}).to_dict()
        for w in SETUP.l2_way_options
    ]


def exhaustive_tier2(matrix, config: SearchConfig = CONFIG) -> dict:
    """The oracle: every candidate priced by the exact tier-2 stack pass.

    Returns ``{winner, misses, per_candidate, seconds,
    predicted_seconds}`` — what the search would cost if it skipped the
    sampled screen and confirmed everything.
    """
    ladder = Ladder(SETUP)
    dims = MatrixDims.of(matrix)
    policies = _policies()
    per_candidate = {}
    started = time.perf_counter()
    predicted = 0.0
    for candidate in candidates_for(config.strategies):
        if not candidate.applicable(matrix):
            continue
        row_perm, col_perm = candidate.build(matrix, config.seed)
        permuted = (matrix if candidate.label == "identity"
                    else matrix.permute(row_perm, col_perm))
        answer = ladder.answer(
            "predict", dims, lambda m=permuted: m,
            name=f"{matrix.name}|{candidate.label}",
            max_tier=2, policies=policies,
        )
        per_candidate[candidate.label] = min(
            p["l2_misses"] for p in answer.result["predictions"]
        )
        predicted += (candidate.cost.predict_seconds(dims.nnz)
                      + answer.predicted_cost_seconds)
    winner = min(per_candidate, key=lambda k: (per_candidate[k],
                                               list(per_candidate).index(k)))
    return {
        "winner": winner,
        "misses": per_candidate[winner],
        "per_candidate": per_candidate,
        "seconds": time.perf_counter() - started,
        "predicted_seconds": predicted,
    }


def measure_workload(name, factory, oracle: bool = True) -> dict:
    """Search vs exhaustive on one workload (oracle optional for speed)."""
    matrix = factory()
    started = time.perf_counter()
    result = optimize(matrix, SETUP, CONFIG).to_dict()
    search_seconds = time.perf_counter() - started
    stats = {
        "nnz": matrix.nnz,
        "gated": result["fidelity"]["gated"],
        "winner": result["winner"]["label"],
        "before_misses": result["confirmation"]["before_misses"],
        "after_misses": result["confirmation"]["after_misses"],
        "improvement": result["confirmation"]["improvement"],
        "ladder_answers": result["fidelity"]["ladder_answers"],
        "search_seconds": search_seconds,
        "search_predicted_seconds": result["fidelity"]["predicted_cost_seconds"],
        "fingerprint": optimize_fingerprint(result),
    }
    if oracle:
        exhaustive = exhaustive_tier2(matrix)
        stats["exhaustive"] = exhaustive
        # the oracle check compares objective values, not labels: two
        # strategies may legitimately tie on exact misses
        stats["matches_exhaustive"] = (
            stats["after_misses"] == exhaustive["misses"]
        )
    return stats


def run_benchmark(verbose: bool = True) -> dict:
    payload = {
        "setup": {"scale": SETUP.scale, "num_threads": SETUP.num_threads},
        "search": {"strategies": list(CONFIG.strategies),
                   "budget_seconds": CONFIG.budget_seconds,
                   "seed": CONFIG.seed},
        "matrices": {},
    }
    for name, factory, headline in WORKLOADS:
        stats = measure_workload(name, factory)
        payload["matrices"][name] = stats
        if headline:
            payload["headline"] = {
                "matrix": name,
                "improvement": stats["improvement"],
                "search_seconds": stats["search_seconds"],
                "exhaustive_seconds": stats["exhaustive"]["seconds"],
                "cost_ratio": (stats["exhaustive"]["seconds"]
                               / max(stats["search_seconds"], 1e-9)),
                "predicted_cost_ratio": (
                    stats["exhaustive"]["predicted_seconds"]
                    / max(stats["search_predicted_seconds"], 1e-9)
                ),
            }
        if verbose:
            marker = " (gated)" if stats["gated"] else ""
            print(
                f"{name}: winner={stats['winner']}{marker} "
                f"improvement={stats['improvement']:.1%} "
                f"search={stats['search_seconds']:.2f}s "
                f"exhaustive={stats['exhaustive']['seconds']:.2f}s "
                f"match={stats['matches_exhaustive']}"
            )
    payload["matches_exhaustive"] = all(
        stats["matches_exhaustive"] for stats in payload["matrices"].values()
    )
    return payload


# -- pytest entry points (pytest benchmarks/bench_optimize.py) -----------


def test_bench_search_cheaper_than_exhaustive(benchmark):
    """Structured workload: screening beats confirming everything."""
    stats = benchmark.pedantic(
        lambda: measure_workload(*WORKLOADS[0][:2]),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    benchmark.extra_info["search_seconds"] = stats["search_seconds"]
    benchmark.extra_info["exhaustive_seconds"] = stats["exhaustive"]["seconds"]
    assert stats["matches_exhaustive"]
    assert stats["improvement"] > 0
    # predicted costs are deterministic; wall seconds wobble on shared
    # runners, so the hard assertion rides on the cost models
    assert (stats["exhaustive"]["predicted_seconds"]
            > stats["search_predicted_seconds"])


def test_bench_search_deterministic():
    """Same seed + budget => byte-identical search (minus timings)."""
    matrix = WORKLOADS[0][1]()
    first = optimize(matrix, SETUP, CONFIG).to_dict()
    second = optimize(matrix, SETUP, CONFIG).to_dict()
    assert optimize_fingerprint(first) == optimize_fingerprint(second)


def test_bench_gate_short_circuits():
    """Clean banded workload: tier 0 proves the search moot."""
    stats = measure_workload(*WORKLOADS[2][:2], oracle=False)
    assert stats["gated"]
    assert stats["winner"] == "identity"
    # one tier-0 gate + one tier-2 confirmation; no sampled screens
    assert stats["ladder_answers"] == {"0": 1, "2": 1}


# -- script mode: JSON emitter + CI smoke check --------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the search-vs-exhaustive payload here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: relaxed cost ratio, oracle agreement, "
             "positive improvement, gate short-circuit, determinism",
    )
    parser.add_argument(
        "--min-cost-ratio", type=float, default=1.0,
        help="required exhaustive/search cost ratio on the headline "
             "matrix (candidate *construction* is paid by both sides, so "
             "the ladder's stack-pass savings bound the ratio from "
             "above, and scheduler noise wobbles it around that bound); "
             "under --check it gates the deterministic cost-model ratio, "
             "otherwise the measured wall ratio",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark()
    headline = payload["headline"]
    print(
        f"headline ({headline['matrix']}): {headline['improvement']:.1%} "
        f"confirmed improvement; search {headline['cost_ratio']:.1f}x "
        f"cheaper than exhaustive tier-2 "
        f"({headline['predicted_cost_ratio']:.1f}x by the cost models)"
    )

    failures = []
    if not payload["matches_exhaustive"]:
        failures.append("search winner disagrees with the exhaustive oracle")
    if headline["improvement"] <= 0:
        failures.append("no confirmed improvement on the structured workload")
    # wall seconds are meaningless on a loaded shared runner, so --check
    # gates the deterministic cost-model ratio instead
    gated_ratio = ("predicted_cost_ratio" if args.check else "cost_ratio")
    if headline[gated_ratio] < args.min_cost_ratio:
        failures.append(
            f"{gated_ratio} {headline[gated_ratio]:.2f}x "
            f"< required {args.min_cost_ratio:g}x"
        )
    gated = payload["matrices"]["banded_gated"]
    if not gated["gated"] or gated["ladder_answers"] != {"0": 1, "2": 1}:
        failures.append("tier-0 gate did not short-circuit the banded workload")

    matrix = WORKLOADS[0][1]()
    reference = optimize_fingerprint(optimize(matrix, SETUP, CONFIG).to_dict())
    repeat = optimize_fingerprint(optimize(matrix, SETUP, CONFIG).to_dict())
    if reference != repeat:
        failures.append("repeated searches produced different fingerprints")
    else:
        print("OK: repeated searches are fingerprint-identical")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: search matches the exhaustive tier-2 winner on every workload")
    return 0


if __name__ == "__main__":
    sys.exit(main())
