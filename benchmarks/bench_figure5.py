"""Figure 5: speedup vs. change in L2 demand misses (5 L2 ways).

The timed kernel extracts the demand-miss deltas from cached events; the
artefact is the per-class scatter plus the correlation the paper reads
off the figure.
"""

import numpy as np

from repro.experiments import correlation, figure5_points, render_figure5


def test_figure5_speedup_vs_demand_misses(benchmark, capsys, parallel_records, parallel_setup):
    machine = parallel_setup.machine()

    def extract():
        return figure5_points(parallel_records, machine)

    points = benchmark.pedantic(extract, rounds=5, iterations=1, warmup_rounds=0)
    with capsys.disabled():
        print()
        print(render_figure5(points))
        rho = correlation(points)
        print(f"correlation(demand-miss change, speedup) = {rho:.3f} (expected negative)")
        top = [
            (change, speed)
            for pts in points.values()
            for change, speed in pts
            if speed >= 1.2
        ]
        if top:
            lo = min(change for change, _ in top)
            hi = max(change for change, _ in top)
            print(
                f"speedups >= 1.2x show demand-miss changes in [{lo:.0f} %, {hi:.0f} %] "
                "(paper: about -80 % to -30 %)"
            )
