"""Advisor daemon round-trip performance (warm cache vs. fresh evaluation).

Runs an in-process daemon (:class:`repro.service.ServiceThread`) and
measures the full HTTP round-trip of ``advise`` requests: the warm path
(memory-tier hit — parse, hash, cache lookup, serialize) sets the floor
for interactive use, the cold path adds one model evaluation in a pool
worker, and the throughput bench drives concurrent warm clients.  The
accuracy-audit check at the end pins the ``--audit-rate`` politeness
invariant: a daemon actively draining its audit backlog must serve the
warm path at the same latency as one with the audit disabled.
"""

import itertools
import statistics
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.matrices import banded
from repro.service import ServiceClient, ServiceConfig, ServiceThread

_WARM_POOL = 8  # distinct primed matrices for the throughput bench


def _matrix(seed):
    return banded(1_500, 60, 8, seed=seed)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("bench_service_cache")
    with ServiceThread(ServiceConfig(jobs=2, cache_dir=str(cache_dir))) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        for seed in range(_WARM_POOL):
            client.advise(_matrix(seed), num_threads=8)
        client.advise(name="banded_001", collection="tiny", num_threads=8)
        yield client


def test_advise_warm_cache_latency(benchmark, service):
    matrix = _matrix(0)
    envelope = benchmark(lambda: service.advise(matrix, num_threads=8))
    assert envelope["cached"] == "memory"


def test_advise_named_warm_latency_keepalive(benchmark, service):
    """Warm hit by collection reference over the pooled connection.

    Name-based requests skip the inline-matrix serialization, so the
    round-trip is the protocol floor — the regime where keep-alive
    matters most.
    """
    envelope = benchmark(
        lambda: service.advise(name="banded_001", collection="tiny",
                               num_threads=8)
    )
    assert envelope["cached"] == "memory"


def test_advise_named_warm_latency_without_keepalive(benchmark, service):
    """The same warm hit paying a fresh TCP connection per request.

    ``close()`` drops the pooled keep-alive connection before every call,
    so the delta against ``test_advise_named_warm_latency_keepalive`` is
    exactly what connection reuse saves on the interactive path.
    """

    def reconnect_each_time():
        service.close()
        return service.advise(name="banded_001", collection="tiny",
                              num_threads=8)

    envelope = benchmark(reconnect_each_time)
    assert envelope["cached"] == "memory"


def test_advise_cold_evaluation_latency(benchmark, service):
    # a fresh seed each call keeps every request a genuine evaluation
    seeds = itertools.count(1_000)

    def cold():
        return service.advise(_matrix(next(seeds)), num_threads=8)

    envelope = benchmark.pedantic(cold, rounds=5, iterations=1, warmup_rounds=1)
    assert envelope["cached"] is None


def test_advise_warm_throughput(benchmark, service):
    matrices = [_matrix(seed) for seed in range(_WARM_POOL)]

    def burst():
        with ThreadPoolExecutor(max_workers=4) as pool:
            return list(pool.map(
                lambda m: service.advise(m, num_threads=8), matrices
            ))

    envelopes = benchmark(burst)
    assert all(e["cached"] == "memory" for e in envelopes)
    benchmark.extra_info["requests_per_round"] = _WARM_POOL


def _median_warm_seconds(client, rounds=40):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        envelope = client.advise(name="banded_001", collection="tiny",
                                 num_threads=8)
        times.append(time.perf_counter() - started)
        # any pool wait would show up as a non-memory answer
        assert envelope["cached"] == "memory"
    return statistics.median(times)


def test_audit_never_blocks_the_warm_path(service, tmp_path_factory):
    """``--audit-rate`` is free for the foreground: the audit loop only
    pops its backlog while the pool is idle, and warm hits never touch
    the pool — so warm latency with a *busy* auditor stays within noise
    of ``--audit-rate 0``.  Medians are interleaved against the plain
    module daemon so both see the same scheduler weather, and the gate
    is deliberately loose (shared runners): median within 3x + 2ms.
    """
    cache_dir = tmp_path_factory.mktemp("bench_audit_cache")
    config = ServiceConfig(jobs=2, cache_dir=str(cache_dir), audit_rate=1.0)
    with ServiceThread(config) as (host, port):
        audited = ServiceClient(host, port, timeout=120.0)
        audited.advise(name="banded_001", collection="tiny", num_threads=8)
        # queue a standing audit backlog: every tier-0 answer is sampled
        # (rate 1.0) and re-answered on the exact path in the background
        for seed in range(12):
            envelope = audited.advise(_matrix(100 + seed), num_threads=8,
                                      max_tier=0)
            assert envelope["fidelity"]["tier"] == 0
        assert audited.metrics()["audit"]["sampled"] >= 12

        plain_samples, audited_samples = [], []
        for _ in range(4):
            plain_samples.append(_median_warm_seconds(service))
            audited_samples.append(_median_warm_seconds(audited))
        plain, noisy = statistics.median(plain_samples), statistics.median(
            audited_samples)

        audit = audited.metrics()["audit"]
        assert audit["sampled"] >= 12
        assert audit["completed"] + audit["backlog"] + audit["failed"] > 0
        audited.close()
    assert noisy <= plain * 3.0 + 0.002, (
        f"audited warm median {noisy * 1e3:.3f}ms vs plain "
        f"{plain * 1e3:.3f}ms — the audit is leaking into the hot path"
    )
