"""Advisor daemon round-trip performance (warm cache vs. fresh evaluation).

Runs an in-process daemon (:class:`repro.service.ServiceThread`) and
measures the full HTTP round-trip of ``advise`` requests: the warm path
(memory-tier hit — parse, hash, cache lookup, serialize) sets the floor
for interactive use, the cold path adds one model evaluation in a pool
worker, and the throughput bench drives concurrent warm clients.
"""

import itertools
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.matrices import banded
from repro.service import ServiceClient, ServiceConfig, ServiceThread

_WARM_POOL = 8  # distinct primed matrices for the throughput bench


def _matrix(seed):
    return banded(1_500, 60, 8, seed=seed)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("bench_service_cache")
    with ServiceThread(ServiceConfig(jobs=2, cache_dir=str(cache_dir))) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        for seed in range(_WARM_POOL):
            client.advise(_matrix(seed), num_threads=8)
        client.advise(name="banded_001", collection="tiny", num_threads=8)
        yield client


def test_advise_warm_cache_latency(benchmark, service):
    matrix = _matrix(0)
    envelope = benchmark(lambda: service.advise(matrix, num_threads=8))
    assert envelope["cached"] == "memory"


def test_advise_named_warm_latency_keepalive(benchmark, service):
    """Warm hit by collection reference over the pooled connection.

    Name-based requests skip the inline-matrix serialization, so the
    round-trip is the protocol floor — the regime where keep-alive
    matters most.
    """
    envelope = benchmark(
        lambda: service.advise(name="banded_001", collection="tiny",
                               num_threads=8)
    )
    assert envelope["cached"] == "memory"


def test_advise_named_warm_latency_without_keepalive(benchmark, service):
    """The same warm hit paying a fresh TCP connection per request.

    ``close()`` drops the pooled keep-alive connection before every call,
    so the delta against ``test_advise_named_warm_latency_keepalive`` is
    exactly what connection reuse saves on the interactive path.
    """

    def reconnect_each_time():
        service.close()
        return service.advise(name="banded_001", collection="tiny",
                              num_threads=8)

    envelope = benchmark(reconnect_each_time)
    assert envelope["cached"] == "memory"


def test_advise_cold_evaluation_latency(benchmark, service):
    # a fresh seed each call keeps every request a genuine evaluation
    seeds = itertools.count(1_000)

    def cold():
        return service.advise(_matrix(next(seeds)), num_threads=8)

    envelope = benchmark.pedantic(cold, rounds=5, iterations=1, warmup_rounds=1)
    assert envelope["cached"] is None


def test_advise_warm_throughput(benchmark, service):
    matrices = [_matrix(seed) for seed in range(_WARM_POOL)]

    def burst():
        with ThreadPoolExecutor(max_workers=4) as pool:
            return list(pool.map(
                lambda m: service.advise(m, num_threads=8), matrices
            ))

    envelopes = benchmark(burst)
    assert all(e["cached"] == "memory" for e in envelopes)
    benchmark.extra_info["requests_per_round"] = _WARM_POOL
