"""Incremental reuse engine benchmark (the ``POST /delta`` patch path).

Measures, per paper class, the cost of pricing a small edit batch through
:meth:`repro.delta.ReuseState.apply` (CSR apply + incremental patch — the
engine behind ``POST /delta``) against a full re-evaluation (CSR apply +
:func:`repro.delta.full_reuse_state`), on one representative generator
matrix per class and a 64-edit locality-preserving batch.

The expected shape is the paper's locality taxonomy itself: classes 1
(banded) and 2 (block-diagonal) localize an edit inside short reuse
windows, so the patch is several times cheaper than the full pass *and*
byte-identical to it; classes 3a/3b (random, power-law) couple an edit to
trace-spanning windows, the patch budget overflows, and the engine falls
back — reported honestly, never silently.

Run as a script for the JSON emitter / CI smoke mode::

    PYTHONPATH=src python benchmarks/bench_delta.py --json BENCH_delta.json
    PYTHONPATH=src python benchmarks/bench_delta.py --check

``--check`` relaxes the speedup floor (>= 2x instead of the committed
>= 5x): shared CI runners measure scheduler noise, not the engine.  Byte
identity of the patched distances and the per-class path expectations are
asserted at full strength in both modes.
"""

import argparse
import json
import sys
import time

from repro.delta import DEFAULT_BUDGET
from repro.experiments import ExperimentSetup
from repro.experiments.common import peak_rss_bytes
from repro.experiments.delta import CLASS_CASES, measure_delta, pattern_edits

#: Matrix rows per class case — large enough that a full pass costs
#: around a second, so the ratio measures the engine rather than numpy
#: call overhead.
DEFAULT_ROWS = 200_000

#: Edits per batch (half neighbor inserts, half deletes).
DEFAULT_EDITS = 64

#: Which engine path each paper class must take at the default budget.
EXPECTED_PATHS = {"1": "incremental", "2": "incremental",
                  "3a": "fallback", "3b": "fallback"}


def run_benchmark(repeats: int = 3, n: int = DEFAULT_ROWS,
                  edits: int = DEFAULT_EDITS, budget: int = DEFAULT_BUDGET,
                  verbose: bool = True) -> dict:
    """The full measurement payload (the ``BENCH_delta.json`` shape).

    Each class reports the best of ``repeats`` patch/full timing pairs
    (the identity and path checks must hold on *every* repeat; only the
    seconds take the minimum).
    """
    line_size = ExperimentSetup(scale=16, num_threads=1).machine().line_size
    payload = {
        "rows": n,
        "edits": edits,
        "budget": budget,
        "line_size": line_size,
        "classes": {},
    }
    for cls, label, make in CLASS_CASES:
        matrix = make(n)
        delta = pattern_edits(matrix, edits)
        best = None
        for _ in range(repeats):
            row = measure_delta(matrix, line_size, delta, budget=budget)
            if best is None:
                best = row
            else:
                assert row["path"] == best["path"]
                assert row["identical"] == best["identical"]
                best["incremental_seconds"] = min(
                    best["incremental_seconds"], row["incremental_seconds"]
                )
                best["full_seconds"] = min(
                    best["full_seconds"], row["full_seconds"]
                )
        if best["path"] == "incremental":
            best["speedup"] = best["full_seconds"] / best["incremental_seconds"]
        payload["classes"][cls] = {"matrix": label, **best}
        if verbose:
            speedup = (f" {best['speedup']:.1f}x"
                       if best["speedup"] else "")
            print(f"class {cls} ({label}): {best['path']}{speedup} "
                  f"patch={best['incremental_seconds'] * 1e3:.1f}ms "
                  f"full={best['full_seconds'] * 1e3:.1f}ms")
    incremental = [
        row for row in payload["classes"].values()
        if row["path"] == "incremental"
    ]
    payload["headline"] = {
        "incremental_classes": [
            cls for cls, row in payload["classes"].items()
            if row["path"] == "incremental"
        ],
        "min_incremental_speedup": (
            min(row["speedup"] for row in incremental) if incremental
            else None
        ),
        "all_identical": all(row["identical"] for row in incremental),
    }
    payload["peak_rss_bytes"] = peak_rss_bytes()
    return payload


def check_payload(payload: dict, min_speedup: float) -> list:
    """Path / identity / speedup assertions; returns failure strings."""
    failures = []
    for cls, expected in EXPECTED_PATHS.items():
        got = payload["classes"][cls]["path"]
        if got != expected:
            failures.append(f"class {cls} took the {got} path, "
                            f"expected {expected}")
    if not payload["headline"]["all_identical"]:
        failures.append(
            "an incremental patch disagreed with the full re-evaluation"
        )
    speedup = payload["headline"]["min_incremental_speedup"]
    if speedup is None:
        failures.append("no class took the incremental path")
    elif speedup < min_speedup:
        failures.append(f"min incremental speedup {speedup:.1f}x "
                        f"< required {min_speedup:g}x")
    return failures


# -- pytest entry points (pytest benchmarks/bench_delta.py) --------------


def test_bench_delta_paths_and_identity():
    """Small sizes: per-class paths and byte identity, no timing gates."""
    payload = run_benchmark(repeats=1, n=20_000, verbose=False)
    assert not check_payload(payload, min_speedup=0.0)


# -- script mode: JSON emitter + CI smoke check --------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the per-class patch/full payload here",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI smoke mode: relaxed speedup floor, full-strength path "
             "and byte-identity assertions",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions (best-of)"
    )
    parser.add_argument(
        "--rows", type=int, default=DEFAULT_ROWS,
        help="matrix rows per class case",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="required full/patch ratio on every incremental class "
             "(default: 5, or 2 under --check)",
    )
    args = parser.parse_args(argv)
    min_speedup = args.min_speedup or (2.0 if args.check else 5.0)

    started = time.perf_counter()
    payload = run_benchmark(repeats=args.repeats, n=args.rows)
    headline = payload["headline"]
    print(
        f"headline: classes {', '.join(headline['incremental_classes'])} "
        f"patched incrementally at >= "
        f"{headline['min_incremental_speedup']:.1f}x over full "
        f"re-evaluation, byte-identical="
        f"{headline['all_identical']} "
        f"({time.perf_counter() - started:.1f}s total)"
    )

    failures = check_payload(payload, min_speedup)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: in-budget patches byte-identical and above the speedup floor")
    return 0


if __name__ == "__main__":
    sys.exit(main())
