"""Table 2: L2 miss-prediction error (MAPE), sequential SpMV.

Regenerates the paper's Table 2 over the collection; the timed kernel is
the method-A + method-B prediction path for one matrix (the model itself,
not the testbed simulation).
"""

from repro.core import CacheMissModel
from repro.experiments import l1_accuracy, accuracy_rows, render_accuracy_table
from repro.matrices import banded
from repro.spmv import listing1_policy


def test_table2_sequential_accuracy(benchmark, capsys, sequential_records, sequential_setup):
    machine = sequential_setup.machine()
    matrix = banded(3_000, 120, 40, seed=0)

    def predict_both():
        model = CacheMissModel(matrix, machine, num_threads=1)
        policy = listing1_policy(5)
        return model.predict(policy, "A"), model.predict(policy, "B")

    benchmark.pedantic(predict_both, rounds=3, iterations=1, warmup_rounds=0)
    rows = accuracy_rows(sequential_records, machine, parallel=False)
    l1_row = l1_accuracy(sequential_records, machine, parallel=False)
    with capsys.disabled():
        print()
        print(render_accuracy_table(
            rows, "Table 2: L2 miss prediction error, sequential SpMV"
        ))
        print(f"L1 (Sec. 4.5.4): A {l1_row.method_a}  B {l1_row.method_b}")
        print("paper: A ~1.5-2.7 %, B ~2.3-3.5 % partitioned; B 6.5 % unpartitioned")
