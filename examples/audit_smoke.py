#!/usr/bin/env python3
"""Observability smoke: the continuous accuracy audit, the structured
event log, and distributed tracing against a live advisor daemon.

Launches ``python -m repro.service`` as a subprocess with
``--audit-rate 0.25`` and ``--event-log``, then drives the observability
story end to end:

1. a sweep of cheap-tier fidelity-ladder answers (``max_tier`` 0 and 1)
   across the tiny collection plus two cache-overflowing ``small``
   stencils (a second paper class) — the deterministic sampler
   shadow-audits a quarter of them against the exact path, off the hot
   path;
2. the audit ledger must drain with **zero bound violations**: every
   observed per-class error quantile within its calibrated bound,
   ``/healthz`` still reporting ``"accuracy": "ok"``, and the
   ``repro_audit_*`` Prometheus families parsing strictly;
3. one traced request (context seeded via ``X-Repro-Trace``) returns a
   schema-valid span tree whose daemon and fork-worker spans share the
   caller's trace id, and lands in ``GET /debug/traces``;
4. the JSON-lines event log validates (``repro.obs.events/v1``) and
   correlates daemon + worker entries for one request by ``trace_id``
   across their different pids.

Run:  python examples/audit_smoke.py
CI:   python examples/audit_smoke.py --selftest     (quiet, asserts only)
"""

import argparse
import re
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.matrices.collection import collection
from repro.obs import parse_prometheus_text, validate_tree
from repro.obs.context import TraceContext
from repro.obs.events import validate_log_text
from repro.service import ServiceClient

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")

SETUP = {"num_threads": 8}
AUDIT_RATE = 0.25
#: sampling is a deterministic hash of (seed, request key); this seed
#: makes the 25% sampler pick tier-0 keys from several matrix families,
#: a tier-1 key out of the tiny collection, AND one of the two
#: cache-overflowing ``small`` matrices below, so the smoke exercises
#: multiple paper classes and both cheap tiers on every run
AUDIT_SEED = 2
#: the tiny collection is all class (1) — every working set fits in L2.
#: these two ``small`` stencils overflow the cache, so auditing them
#: lands observed-error samples in a second paper class
OVERFLOW_NAMES = ("stencil_2d_005", "stencil_2d_029")


def launch_daemon(cache_dir, event_log):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--jobs", "2", "--cache", cache_dir,
         "--audit-rate", str(AUDIT_RATE), "--audit-seed", str(AUDIT_SEED),
         "--event-log", event_log],
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        proc.terminate()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)), timeout=120.0)
    client.wait_ready()
    return proc, client


def drain_audit(client, deadline_seconds=180.0):
    """Wait until the audit backlog is empty and every sample resolved."""
    deadline = time.monotonic() + deadline_seconds
    while time.monotonic() < deadline:
        audit = client.metrics()["audit"]
        if (audit["backlog"] == 0
                and audit["completed"] + audit["failed"] >= audit["sampled"]):
            return audit
        time.sleep(0.2)
    raise AssertionError(f"audit backlog did not drain: {audit}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet mode for CI: asserts only")
    parser.add_argument("--event-log-out", default=None, metavar="PATH",
                        help="copy the daemon's event log here before the "
                             "workspace is cleaned up (CI validates it with "
                             "python -m repro.obs.events --validate)")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    names = [spec.name for spec in collection("tiny")]
    with tempfile.TemporaryDirectory() as tmp:
        event_log = str(Path(tmp) / "events.jsonl")
        proc, client = launch_daemon(str(Path(tmp) / "cache"), event_log)
        try:
            # -- 1. cheap-tier answers for the sampler to shadow-audit --
            say(f"sweeping {len(names)} matrices at max_tier 0 and 1 "
                f"(audit rate {AUDIT_RATE}) ...")
            for name in names:
                envelope = client.predict(name=name, collection="tiny",
                                          max_tier=0, **SETUP)
                assert envelope["ok"] and envelope["fidelity"]["tier"] == 0
            for name in names[:4]:
                envelope = client.advise(name=name, collection="tiny",
                                         max_tier=1, **SETUP)
                assert envelope["ok"]
                assert envelope["fidelity"]["tier"] <= 1
            for name in OVERFLOW_NAMES:
                envelope = client.predict(name=name, collection="small",
                                          max_tier=0, **SETUP)
                assert envelope["ok"] and envelope["fidelity"]["tier"] == 0

            # -- 2. the audit drains with zero bound violations ---------
            audit = drain_audit(client)
            say(f"audit: {audit['sampled']} sampled, "
                f"{audit['completed']} completed, {audit['failed']} failed, "
                f"{audit['violations_total']} violations")
            assert audit["sampled"] >= 6, "deterministic sampler regressed"
            assert audit["failed"] == 0
            assert audit["violations_total"] == 0
            assert audit["status"] == "ok"
            assert len(audit["observed_error"]) >= 2, \
                "expected several exercised paper classes"
            tiers_seen = {tier for per_tier in audit["observed_error"].values()
                          for tier in per_tier}
            assert {"0", "1"} <= tiers_seen, tiers_seen
            for cls_value, per_tier in sorted(audit["observed_error"].items()):
                for tier, sketch in sorted(per_tier.items()):
                    say(f"  class {cls_value} tier {tier}: "
                        f"{sketch['count']} sample(s), "
                        f"p99 {sketch['quantiles']['p99']:.4f} "
                        f"<= bound {sketch['bound']}")
                    assert sketch["count"] > 0
                    assert sketch["violations"] == 0
                    assert sketch["quantiles"]["p99"] <= sketch["bound"]
            assert client.request("GET", "/healthz")["accuracy"] == "ok"
            samples = parse_prometheus_text(client.metrics(format="prometheus"))
            assert samples["repro_audit_observed_error"]
            assert sum(v for _, v
                       in samples["repro_audit_bound_violations_total"]) == 0
            assert "repro_audit_backlog" in samples

            # -- 3. one traced request, context seeded via the header ---
            caller = TraceContext.new()
            host, port = client.host, client.port
            traced_client = ServiceClient(host, port, timeout=120.0,
                                          trace_context=caller)
            envelope = traced_client.sweep(name=names[0], collection="tiny",
                                           trace=True, **SETUP)
            assert envelope["ok"]
            tree = envelope["trace"]
            assert tree is not None and validate_tree(tree) == []
            spans = {root["name"]: root for root in tree["roots"]}
            assert spans["service.request"]["attrs"]["trace_id"] == caller.trace_id
            assert spans["evaluate"]["attrs"]["trace_id"] == caller.trace_id
            assert (spans["evaluate"]["attrs"]["span_id"]
                    != spans["service.request"]["attrs"]["span_id"])
            debug = traced_client.request("GET", "/debug/traces")
            assert any(e["trace_id"] == caller.trace_id
                       for e in debug["traces"])
            traced_client.close()
            say(f"trace {caller.trace_id} round-tripped and recorded "
                "in /debug/traces")

        finally:
            try:
                client.shutdown()
            except Exception:
                pass  # already down, or never came up
            client.close()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)

        # -- 4. the event log validates and correlates processes --------
        entries, problems = validate_log_text(
            Path(event_log).read_text(encoding="utf-8"))
        assert problems == [], problems
        events = {entry["event"] for entry in entries}
        for needed in ("service.start", "request", "worker.evaluate",
                       "audit.sample", "service.stop"):
            assert needed in events, (needed, sorted(events))
        by_trace = {}
        for entry in entries:
            if entry.get("trace_id"):
                by_trace.setdefault(entry["trace_id"], []).append(entry)
        correlated = [
            group for group in by_trace.values()
            if {"request", "worker.evaluate"} <= {e["event"] for e in group}
            and len({e["source"]["pid"] for e in group}) >= 2
        ]
        assert correlated, "no trace_id correlating daemon + worker pids"
        say(f"event log: {len(entries)} entries, {len(events)} kinds, "
            f"{len(by_trace)} trace ids, "
            f"{len(correlated)} cross-process correlations")
        if args.event_log_out:
            Path(args.event_log_out).write_bytes(
                Path(event_log).read_bytes())

    if args.selftest:
        print("audit_smoke selftest: OK")
    else:
        print("audit smoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
