#!/usr/bin/env python3
"""Reordering-optimizer tour: the ``/optimize`` endpoint end to end.

Launches ``python -m repro.service`` as a subprocess on an ephemeral
port, then walks the client through the reordering search:

1. an ``optimize`` call on a class-3 matrix (a banded pattern hidden
   behind a random symmetric shuffle) — the search screens candidates
   with tier-0/1 ladder answers and confirms a strictly positive
   improvement with the exact tier-2 pass,
2. the same call again — served from the cache, byte-identical,
3. a different seed — a *different* cache key (search config is keyed),
4. the tier-0 gate: a clean banded matrix short-circuits to identity,
5. ``/metrics``: per-strategy outcomes, the improvement histogram, and
   the ladder counters proving no exact pass ran before confirmation.

Run:  python examples/optimize_tour.py
CI:   python examples/optimize_tour.py --selftest   (quiet, asserts only)
"""

import argparse
import dataclasses
import re
import subprocess
import sys
import tempfile

import numpy as np

from repro.matrices import banded
from repro.service import ServiceClient

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")

#: one-CMG setup at 1/64 machine scale: small matrices, all classes reachable
SETUP = {"scale": 64, "num_threads": 8}


def launch_daemon(cache_dir: str) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--jobs", "2", "--cache", cache_dir],
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        proc.terminate()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)), timeout=300.0)
    client.wait_ready()
    return proc, client


def shuffled_band():
    """A banded matrix whose structure a random shuffle has hidden."""
    base = banded(12_000, 24, 6, seed=3)
    perm = np.random.default_rng(7).permutation(base.num_rows).astype(np.int64)
    return dataclasses.replace(base.permute(perm, perm), name="shuffled_band")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet run for CI; exit non-zero on any mismatch")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    with tempfile.TemporaryDirectory(prefix="optimize-tour-") as cache_dir:
        proc, client = launch_daemon(cache_dir)
        try:
            say(f"daemon up at http://{client.host}:{client.port} "
                f"(cache: {cache_dir})\n")

            # -- the search on a class-3 shuffled band -----------------
            matrix = shuffled_band()
            envelope = client.optimize(matrix, seed=0, **SETUP)
            assert envelope["ok"] and envelope["cached"] is None
            result = envelope["result"]
            confirmation = result["confirmation"]
            assert confirmation["improvement"] > 0, confirmation
            assert confirmation["after_misses"] < confirmation["before_misses"]
            say("== optimize: shuffled band (hidden class-3 structure) ==")
            say(f"winner: {result['winner']['label']}")
            say(f"confirmed misses: {confirmation['before_misses']} -> "
                f"{confirmation['after_misses']} "
                f"({confirmation['improvement']:+.1%})")
            for entry in result["strategies"]:
                say(f"  {entry['label']:<16} {entry['status']:<14} "
                    f"screened={entry['screened_misses']}")

            # the search screened at tiers 0/1; tier 2 ran exactly twice
            # (the before/after confirmation), never during screening
            answers = envelope["fidelity"]["ladder_answers"]
            assert answers.get("2") == 2, answers
            assert answers.get("1", 0) > 0, answers
            say(f"ladder answers: {answers} "
                "(tier 2 = the confirmation only)")

            # -- cache: same config hits, different seed misses --------
            again = client.optimize(matrix, seed=0, **SETUP)
            assert again["cached"] == "memory"
            assert again["result"] == result
            other_seed = client.optimize(matrix, seed=1, **SETUP)
            assert other_seed["key"] != envelope["key"]
            say(f"\nsame search again: served from the {again['cached']!r} "
                "tier; a different seed is a different key")

            # -- the tier-0 gate ---------------------------------------
            clean = banded(2_000, 16, 4, seed=2)
            gated = client.optimize(clean, **SETUP)
            assert gated["fidelity"]["gated"], gated["fidelity"]
            assert gated["result"]["winner"]["label"] == "identity"
            say("\nclean banded matrix: tier-0 gate short-circuits "
                "(x already fits its partition; identity wins unsearched)")

            # -- metrics -----------------------------------------------
            metrics = client.metrics()
            statuses = metrics["optimize"]["strategies"]
            assert statuses["identity"], statuses
            hist = metrics["optimize"]["improvement"]
            assert hist["count"] >= 3, hist
            ladder = metrics["ladder"]["answers"]["optimize"]
            assert ladder.get("1", 0) > 0 and ladder.get("2", 0) >= 4, ladder
            say("\n== /metrics ==")
            say(f"per-strategy outcomes: {statuses}")
            say(f"improvement histogram: n={hist['count']}")
            say(f"ladder answers (optimize): {ladder}")

            # -- clean shutdown ----------------------------------------
            assert client.shutdown()["ok"]
            assert proc.wait(timeout=30) == 0, "daemon exited uncleanly"
            say("\ndaemon shut down cleanly")
        finally:
            if proc.poll() is None:
                proc.terminate()
    if args.selftest:
        print("optimize_tour selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
