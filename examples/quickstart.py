#!/usr/bin/env python3
"""Quickstart: model the cache behaviour of CSR SpMV with the sector cache.

Walks the core workflow of the library:

1. build a sparse matrix (here: a FEM-like band matrix),
2. classify it against the A64FX cache geometry (paper Section 3.1),
3. predict steady-state L2 misses with and without the sector cache using
   the reuse-distance model (methods A and B),
4. cross-check against the simulated A64FX memory hierarchy,
5. reproduce the paper's Figure-1 worked example.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CacheMissModel,
    SpMVCacheSim,
    SimConfig,
    listing1_policy,
    no_sector_cache,
    scaled_machine,
    spmv,
)
from repro.core import MemoryLayout, spmv_trace
from repro.matrices import banded
from repro.spmv import CSRMatrix


def main() -> None:
    machine = scaled_machine(16)  # the testbed: a 1/16-scale A64FX
    print(f"machine: {machine.num_cores} cores, "
          f"{machine.l2.capacity_bytes // 1024} KiB L2 per CMG, "
          f"{machine.line_size} B lines\n")

    # -- 1. a band matrix, the bread-and-butter SpMV workload -------------
    matrix = banded(n=25_000, bandwidth=600, nnz_per_row=12, seed=7)
    x = np.ones(matrix.num_cols)
    y = spmv(matrix, x)
    print(f"matrix: {matrix}")
    print(f"||A·1||_1 = {np.abs(y).sum():.0f} "
          "(= generated entries; duplicates were summed during assembly)\n")

    # -- 2. classify (Section 3.1) ----------------------------------------
    model = CacheMissModel(matrix, machine, num_threads=48)
    print(f"classification with 5 sector-1 ways: {model.matrix_class(5)}")

    # -- 3. predict misses with methods A and B ---------------------------
    baseline, sector = no_sector_cache(), listing1_policy(5)
    for policy in (baseline, sector):
        a = model.predict(policy, "A").l2_misses
        b = model.predict(policy, "B").l2_misses
        print(f"  {policy.describe():<60s} A={a:7d}  B={b:7d}")

    # -- 4. cross-check against the simulated testbed ---------------------
    sim = SpMVCacheSim(matrix, machine, SimConfig(num_threads=48))
    measured_base = sim.events(baseline)
    measured_sect = sim.events(sector)
    print(f"\nsimulated L2 misses: baseline {measured_base.l2_misses}, "
          f"5 L2 ways {measured_sect.l2_misses} "
          f"({100 * (measured_sect.l2_misses - measured_base.l2_misses) / measured_base.l2_misses:+.1f} %)")
    print(f"demand misses: {measured_base.l2_demand_misses} -> "
          f"{measured_sect.l2_demand_misses}")

    # -- 5. the paper's Figure 1 ------------------------------------------
    tiny = CSRMatrix.from_coo(
        4, 4, np.array([0, 0, 1, 2, 2, 3, 3]), np.array([1, 2, 0, 2, 3, 1, 3])
    )
    layout = MemoryLayout.for_matrix(tiny, line_size=16)
    trace = spmv_trace(tiny, layout)[0]
    print("\nFigure 1(b/c): cache-line trace of the 7-nonzero example "
          "(16-byte lines):")
    names = ["x", "y", "a", "col", "row"]
    rendered = [
        f"{names[int(a)]}:{line}" for line, a in zip(trace.lines, trace.arrays)
    ]
    print("  " + " ".join(rendered))


if __name__ == "__main__":
    main()
