#!/usr/bin/env python3
"""Advisor tour: model-only sector-cache recommendations per matrix class.

Runs the :class:`repro.core.SectorAdvisor` — which prices every candidate
policy with a single method-(B) stack pass, no simulation — over one
representative matrix per Section-3.1 class and prints the recommended
FCC pragmas, then verifies the class-(2) recommendation against the
simulated testbed.

Run:  python examples/advisor_tour.py
"""

from repro import SimConfig, SpMVCacheSim, scaled_machine
from repro.core import SectorAdvisor
from repro.matrices import banded, diagonal_plus_random, random_uniform


def main() -> None:
    machine = scaled_machine(16)
    advisor = SectorAdvisor(machine, num_threads=48)
    cases = [
        ("class (1): small FEM band", banded(800, 20, 10, seed=1)),
        ("class (2): wide band", banded(26_000, 2_500, 11, seed=3)),
        ("class (3a): band + scatter", diagonal_plus_random(38_000, 5, 2, bandwidth=500, seed=3)),
        ("class (3b): huge random", random_uniform(140_000, 3, seed=1)),
    ]
    verified = None
    for label, matrix in cases:
        rec = advisor.recommend(matrix)
        print(f"== {label}: {matrix}")
        print(rec.summary())
        print()
        if rec.matrix_class.value == "2":
            verified = (matrix, rec)

    if verified is not None:
        matrix, rec = verified
        print("verifying the class-(2) recommendation on the simulated testbed...")
        sim = SpMVCacheSim(matrix, machine, SimConfig(num_threads=48))
        base = sim.baseline_events().l2_misses
        got = sim.events(rec.best.policy).l2_misses
        print(f"simulated L2 misses: {base} -> {got} "
              f"({100 * (got - base) / base:+.1f} %, advisor predicted "
              f"{rec.best.predicted_l2_misses} vs baseline "
              f"{rec.baseline.predicted_l2_misses})")


if __name__ == "__main__":
    main()
