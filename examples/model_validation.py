#!/usr/bin/env python3
"""Model validation: methods (A) and (B) against the simulated testbed.

Reproduces the Table 2/3 methodology on a handful of matrices: predict L2
misses per sector configuration with both methods, measure on the
simulated hierarchy, and report the absolute percentage errors — including
the regimes where the paper expects each method to struggle (method B on
skewed row lengths; both methods on small sectors with aggressive
prefetching).

Run:  python examples/model_validation.py
"""

from repro import CacheMissModel, SimConfig, SpMVCacheSim, scaled_machine
from repro.analysis import render_table
from repro.matrices import banded, matrix_stats, power_law, random_uniform
from repro.spmv import listing1_policy, no_sector_cache


def main() -> None:
    machine = scaled_machine(16)
    cases = [
        ("regular band", banded(8_000, 900, 30, seed=1)),
        ("uniform scatter", random_uniform(30_000, 7, seed=1)),
        ("skewed power-law", power_law(25_000, 7.0, exponent=1.7, seed=1)),
    ]
    policies = [("no sector", no_sector_cache())] + [
        (f"{w} L2 ways", listing1_policy(w)) for w in (2, 5)
    ]

    for label, matrix in cases:
        stats = matrix_stats(matrix)
        print(f"== {label}: {stats}")
        sim = SpMVCacheSim(matrix, machine, SimConfig(num_threads=48))
        model = CacheMissModel(matrix, machine, num_threads=48)
        rows = []
        for pname, policy in policies:
            measured = sim.events(policy).l2_misses
            pred_a = model.predict(policy, "A").l2_misses
            pred_b = model.predict(policy, "B").l2_misses
            err = lambda p: f"{abs(p - measured) / measured * 100:5.1f} %" if measured else "n/a"
            rows.append((pname, measured, pred_a, err(pred_a), pred_b, err(pred_b)))
        print(render_table(
            ["config", "measured", "method A", "err A", "method B", "err B"], rows
        ))
        print()
    print("expected: a few percent for method A with >=4 ways; method B")
    print("degrades without partitioning and on skewed rows (Sec. 4.5);")
    print("both underpredict 2-way sectors (prefetch eviction is unmodelled)")


if __name__ == "__main__":
    main()
