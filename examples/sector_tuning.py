#!/usr/bin/env python3
"""Sector-cache tuning: pick the way split for a given matrix.

What an A64FX user does before setting the FCC pragmas of Listing 1:
sweep the sector-1 way count on the simulated testbed, look at misses,
demand misses and modelled speedup, and print the recommended directives.
Exercises the paper's Figures 2-3 pipeline on a single matrix.

Run:  python examples/sector_tuning.py [--matrix band|scatter|graph]
"""

import argparse

from repro import SimConfig, SpMVCacheSim, scaled_machine
from repro.analysis import render_table
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import banded, diagonal_plus_random, rmat
from repro.spmv import listing1_policy, no_sector_cache

MATRICES = {
    "band": lambda: banded(26_000, 2_500, 11, seed=3),
    "scatter": lambda: diagonal_plus_random(24_000, 8, 2, bandwidth=300, seed=3),
    "graph": lambda: rmat(15, 8, seed=3),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--matrix", choices=sorted(MATRICES), default="scatter")
    parser.add_argument("--threads", type=int, default=48)
    args = parser.parse_args()

    machine = scaled_machine(16)
    matrix = MATRICES[args.matrix]()
    print(f"tuning {matrix} on {args.threads} threads\n")

    sim = SpMVCacheSim(matrix, machine, SimConfig(num_threads=args.threads))
    perf = PerformanceModel(machine)
    base = sim.events(no_sector_cache())
    base_time = perf.estimate(matrix, base, args.threads).seconds

    rows = []
    best_ways, best_speedup = 0, 1.0
    for ways in range(2, 8):
        events = sim.events(listing1_policy(ways))
        est = perf.estimate(matrix, events, args.threads)
        speedup = base_time / est.seconds
        rows.append(
            (
                f"{ways} L2 ways",
                events.l2_misses,
                f"{100 * (events.l2_misses - base.l2_misses) / base.l2_misses:+.1f}",
                events.l2_demand_misses,
                f"{speedup:.3f}",
            )
        )
        if speedup > best_speedup:
            best_ways, best_speedup = ways, speedup
    rows.insert(0, ("baseline", base.l2_misses, "+0.0", base.l2_demand_misses, "1.000"))
    print(render_table(
        ["config", "L2 misses", "change %", "demand misses", "speedup"], rows
    ))

    print()
    if best_ways:
        print(f"recommended ({best_speedup:.2f}x):")
        print(f"  #pragma procedure scache_isolate_way L2={best_ways}")
        print("  #pragma procedure scache_isolate_assign a colidx")
    else:
        print("recommendation: leave the sector cache disabled for this matrix")


if __name__ == "__main__":
    main()
