#!/usr/bin/env python3
"""Reordering study: RCM and load balancing on a low-locality matrix.

The paper observes (Section 4.2) that its Table-1 numbers trail Alappat
et al. on kkt_power, bundle_adj, audikw_1 and delaunay_n24 because the
comparison applies RCM reordering and nonzero-balanced scheduling.  This
example applies both with the from-scratch implementations and shows how
they move locality, misses and modelled Gflop/s.

Run:  python examples/reordering_study.py
"""

from repro import SimConfig, SpMVCacheSim, scaled_machine
from repro.analysis import render_table
from repro.machine.perfmodel import PerformanceModel
from repro.matrices import matrix_stats, power_law, rcm_reorder
from repro.spmv import balanced_schedule, static_schedule


def main() -> None:
    machine = scaled_machine(16)
    perf = PerformanceModel(machine)
    threads = 48

    matrix = power_law(28_000, 7.0, exponent=1.7, seed=5)
    reordered = rcm_reorder(matrix)

    configs = [
        ("original, static rows", matrix, static_schedule(matrix, threads)),
        ("original, nnz-balanced", matrix, balanced_schedule(matrix, threads)),
        ("RCM, static rows", reordered, static_schedule(reordered, threads)),
        ("RCM, nnz-balanced", reordered, balanced_schedule(reordered, threads)),
    ]

    rows = []
    for label, m, schedule in configs:
        stats = matrix_stats(m)
        sim = SpMVCacheSim(m, machine, SimConfig(num_threads=threads), schedule=schedule)
        events = sim.baseline_events()
        est = perf.estimate(m, events, threads)
        rows.append(
            (
                label,
                stats.bandwidth,
                f"{schedule.imbalance(m):.2f}",
                events.l2_misses,
                events.l2_demand_misses,
                f"{est.gflops:.1f}",
            )
        )
    print(f"matrix: {matrix}\n")
    print(render_table(
        ["configuration", "bandwidth", "imbalance", "L2 misses", "demand", "Gflop/s"],
        rows,
    ))
    print("\nRCM shrinks the pattern bandwidth (better x locality); the")
    print("balanced schedule equalises nonzeros per thread - together the")
    print("optimisations Alappat et al. apply before their measurements.")


if __name__ == "__main__":
    main()
