#!/usr/bin/env python3
"""Chaos smoke: seeded fault injection against a live advisor daemon.

Launches ``python -m repro.service`` as a subprocess with
``--allow-fault-injection`` and an aggressive circuit breaker, then
drives the failure modes end to end:

1. a healthy ``advise`` baseline,
2. a mixed concurrent burst — healthy requests interleaved with
   fault-carrying ones (injected worker errors and delays): every
   request must terminate as a result, a structured error, or a marked
   degraded answer — **zero lost requests**,
3. the breaker story: two injected worker crashes trip the ``advise``
   breaker (each one kills a pool worker; the pool is rebuilt), the
   next cache-missing request is answered from the analytic degraded
   path, and after ``--breaker-recovery`` a healthy probe closes the
   breaker again,
4. byte-identity: the baseline request replayed at the end returns the
   same result, so chaos left no residue in the cache.

Run:  python examples/chaos_smoke.py
CI:   python examples/chaos_smoke.py --selftest       (quiet, asserts only)
      python examples/chaos_smoke.py --write-plan p.json   (emit the plan
      for ``python -m repro.resilience.schema p.json``)
"""

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor

from repro.matrices import banded
from repro.resilience.schema import validate_plan
from repro.service import ServiceClient, ServiceError

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")

#: The seeded plan CI validates with the schema CLI and this script uses
#: to crash workers: the first two advise evaluations die like segfaults.
CRASH_PLAN = {
    "schema": "repro.resilience.plan/v1",
    "seed": 42,
    "rules": [
        {"site": "worker.evaluate", "kind": "crash", "max_fires": 2},
    ],
}


def one_rule(site, kind, **fields):
    rule = {"site": site, "kind": kind, **fields}
    return {"schema": "repro.resilience.plan/v1", "seed": 7, "rules": [rule]}


def launch_daemon(cache_dir, jobs):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--jobs", str(jobs), "--cache", cache_dir,
         "--allow-fault-injection",
         "--breaker-threshold", "2", "--breaker-recovery", "0.5"],
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        proc.terminate()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)), timeout=120.0)
    client.wait_ready()
    return proc, client


def classify_outcome(call):
    """Run one request; every legal terminal outcome gets a label."""
    try:
        envelope = call()
    except ServiceError as exc:
        assert isinstance(exc.error.get("type"), str), exc.error
        return "error:" + exc.error["type"]
    assert envelope["ok"] is True
    return "degraded" if envelope.get("degraded") else "ok"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet run for CI; exit non-zero on any mismatch")
    parser.add_argument("--write-plan", metavar="PATH",
                        help="write the seeded crash plan as JSON and exit")
    parser.add_argument("--plan", metavar="PATH",
                        help="use this plan file for the crash phase instead")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker processes (default: 2)")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    if args.write_plan:
        with open(args.write_plan, "w") as handle:
            json.dump(CRASH_PLAN, handle, indent=1)
            handle.write("\n")
        print(f"wrote {args.write_plan}")
        return 0

    crash_plan = CRASH_PLAN
    if args.plan:
        with open(args.plan) as handle:
            crash_plan = json.load(handle)
    problems = validate_plan(crash_plan)
    assert not problems, problems

    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as cache_dir:
        proc, client = launch_daemon(cache_dir, args.jobs)
        try:
            say(f"daemon up at http://{client.host}:{client.port} "
                f"(--allow-fault-injection, breaker threshold 2)\n")

            # -- healthy baseline -------------------------------------
            baseline_matrix = banded(1_400, 50, 9, seed=1)
            baseline = client.advise(baseline_matrix, num_threads=8)
            assert baseline["ok"] and not baseline.get("degraded")
            say("baseline advise: ok (fresh evaluation)")

            # -- mixed burst: zero lost requests ----------------------
            calls = []
            for i in range(12):
                matrix = banded(600 + 16 * i, 24, 7, seed=i)
                if i % 3 == 1:
                    faults = one_rule("worker.evaluate", "error", max_fires=1)
                elif i % 3 == 2:
                    faults = one_rule("worker.evaluate", "delay",
                                      delay_seconds=0.05, max_fires=1)
                else:
                    faults = None
                calls.append(lambda m=matrix, f=faults:
                             client.classify(m, num_threads=8, faults=f))
            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(classify_outcome, calls))
            assert len(outcomes) == len(calls), "lost a request"
            # every outcome is a terminal one we recognize (with breaker
            # threshold 2, consecutive injected errors may open the
            # classify breaker mid-burst, turning later requests into
            # degraded answers — also a legal termination)
            legal = {"ok", "degraded", "error:FaultInjected"}
            assert set(outcomes) <= legal, outcomes
            assert "error:FaultInjected" in outcomes, outcomes
            say(f"mixed burst of {len(calls)}: every request terminated "
                f"({', '.join(sorted(set(outcomes)))})")

            # -- crash x2 trips the breaker ---------------------------
            crash_matrix = banded(2_000, 60, 9, seed=2)
            for attempt in range(2):
                outcome = classify_outcome(
                    lambda: client.advise(crash_matrix, num_threads=8,
                                          faults=crash_plan))
                assert outcome == "error:WorkerCrashed", outcome
            say("\n2 injected worker crashes: structured 500s, pool rebuilt")

            degraded = client.advise(banded(2_200, 60, 9, seed=3),
                                     num_threads=8)
            assert degraded["ok"] and degraded["degraded"] is True
            assert degraded["degraded_reason"] == "breaker_open"
            assert degraded["cached"] is None
            say("breaker open: next advise answered degraded "
                "(method-B closed forms)")

            # -- recovery: a healthy probe closes the breaker ---------
            time.sleep(0.7)
            probe = client.advise(banded(2_400, 60, 9, seed=4), num_threads=8)
            assert probe["ok"] and not probe.get("degraded")
            breaker = client.metrics()["breakers"]["advise"]
            assert breaker["state"] == "closed", breaker
            assert breaker["transitions"].get("closed->open") == 1, breaker
            assert breaker["transitions"].get("half_open->closed") == 1, breaker
            say(f"breaker recovered: transitions {breaker['transitions']}")

            # -- chaos left no residue --------------------------------
            replay = client.advise(baseline_matrix, num_threads=8)
            assert replay["result"] == baseline["result"]
            assert replay["cached"] is not None
            metrics = client.metrics()
            # a crash fire cannot report itself (the counter dies with the
            # worker) — its footprint is the restart counter
            assert "worker.evaluate:crash" not in metrics["faults_injected"]
            assert metrics["faults_injected"].get("worker.evaluate:error", 0) >= 1
            assert metrics["workers"]["restarts"] >= 2
            assert metrics["degraded"]["advise"]["breaker_open"] >= 1
            text = client.metrics(format="prometheus")
            assert 'repro_breaker_state{endpoint="advise"} 0' in text
            assert 'repro_worker_restarts_total 2' in text
            assert ('repro_breaker_transitions_total'
                    '{endpoint="advise",transition="closed->open"} 1') in text
            say("\nreplayed baseline: byte-identical result "
                f"(served from {replay['cached']!r})")
            say(f"faults injected: {metrics['faults_injected']}  "
                f"restarts: {metrics['workers']['restarts']}")

            assert client.shutdown()["ok"]
            assert proc.wait(timeout=30) == 0, "daemon exited uncleanly"
            say("daemon shut down cleanly")
        finally:
            if proc.poll() is None:
                proc.terminate()
    if args.selftest:
        print("chaos_smoke selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
