#!/usr/bin/env python3
"""Dynamic-matrix smoke: the incremental reuse engine behind ``POST /delta``
against a live advisor daemon.

Launches ``python -m repro.service`` as a subprocess (``--jobs 1``, so
chained deltas land on the one worker holding the warm reuse state) and
drives the dynamic-matrix story end to end:

1. a base ``advise`` on a class-1 banded matrix, submitted inline, whose
   envelope ``"key"`` becomes the delta base;
2. a band-local edit batch through ``POST /delta``: the response must be
   **byte-identical** to re-submitting the edited matrix in full, priced
   on the ``incremental`` path, and report the accumulated drift;
3. a second batch chained off the *derived* key (``chain_length`` 2),
   patched against the worker's warm reuse state;
4. a repeat of the first delta, answered from the result cache without
   re-patching;
5. the failure modes: an insert of an existing edge (400 ``DeltaError``),
   an unknown base key (404), an empty batch (400), and a
   multi-threaded base falling back with reason ``threads`` — priced
   correctly, just not incrementally;
6. the ``/metrics`` delta families (``applied`` by path, ``fallback`` by
   reason, the drift histogram) and their Prometheus rendering.

Run:  python examples/delta_smoke.py
CI:   python examples/delta_smoke.py --selftest     (quiet, asserts only)
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

from repro.delta import MatrixDelta
from repro.matrices.generators import banded
from repro.obs import parse_prometheus_text
from repro.service import ServiceClient
from repro.service.client import ServiceError

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")

#: The incremental engine patches the single-thread Method B trace, so
#: the base request must be sequential; a parallel base falls back (the
#: smoke asserts exactly that in step 5).
SETUP = {"num_threads": 1, "scale": 16}


def launch_daemon(cache_dir: str):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--jobs", "1", "--cache", cache_dir],
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        proc.terminate()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)), timeout=120.0)
    client.wait_ready()
    return proc, client


def band_edits(matrix, rows):
    """One absent band-local insert and one existing delete per row.

    Neighbor inserts keep every dirtied reuse window short, which is
    what holds a class-1 edit batch inside the patch budget.
    """
    inserts, deletes = [], []
    for r in rows:
        cols = matrix.colidx[matrix.rowptr[r]:matrix.rowptr[r + 1]].tolist()
        colset = set(cols)
        ins = next(c for base in cols for c in (base + 1, base - 1,
                                                base + 2, base - 2)
                   if 0 <= c < matrix.num_cols and c not in colset)
        inserts.append([r, int(ins), 1.0])
        deletes.append([r, int(cols[0])])
    return inserts, deletes


def expect_error(fn, status, error_type=None):
    try:
        fn()
    except ServiceError as exc:
        assert exc.status == status, (exc.status, status, exc.error)
        if error_type is not None:
            assert exc.error.get("type") == error_type, exc.error
        return exc
    raise AssertionError(f"expected a {status} ServiceError")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet mode for CI: asserts only")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    matrix = banded(3_000, 8, 6, seed=1)
    batch1 = band_edits(matrix, [10, 500, 1500])
    batch2 = band_edits(matrix, [40, 900, 2200])

    with tempfile.TemporaryDirectory() as tmp:
        proc, client = launch_daemon(str(Path(tmp) / "cache"))
        try:
            # -- 1. the base request: its key is the delta base ---------
            base = client.advise(matrix=matrix, **SETUP)
            assert base["ok"], base
            base_key = base["key"]
            say(f"base advise stored under key {base_key}")

            # -- 2. one edit batch, byte-identical to a full submit -----
            d1 = client.delta(base_key, inserts=batch1[0], deletes=batch1[1])
            assert d1["ok"], d1
            meta = d1["delta"]
            assert meta["base"] == base_key, meta
            assert meta["chain_length"] == 1, meta
            assert meta["path"] == "incremental", meta
            assert meta["edits"] == len(batch1[0]) + len(batch1[1]), meta
            assert 0.0 <= meta["drift"] < 1.0, meta
            edited = MatrixDelta.from_dict(
                {"inserts": batch1[0], "deletes": batch1[1]}
            ).apply(matrix).matrix
            full = client.advise(matrix=edited, **SETUP)
            assert d1["result"] == full["result"], \
                "delta answer diverged from the full re-submission"
            say(f"delta #1: path={meta['path']} drift={meta['drift']:.2e}, "
                "byte-identical to the full re-submission")

            # -- 3. a second batch chains off the derived key -----------
            d2 = client.delta(d1["key"], inserts=batch2[0],
                              deletes=batch2[1])
            assert d2["ok"], d2
            assert d2["delta"]["chain_length"] == 2, d2["delta"]
            assert d2["delta"]["path"] == "incremental", d2["delta"]
            assert d2["delta"]["state"] == "warm", (
                "chained delta should patch the worker's warm reuse state",
                d2["delta"],
            )
            assert d2["key"] != d1["key"] != base_key
            say(f"delta #2: chained to length 2 off {d1['key']}, "
                f"state={d2['delta']['state']}")

            # -- 4. a repeated batch is served from the cache -----------
            again = client.delta(base_key, inserts=batch1[0],
                                 deletes=batch1[1])
            assert again["ok"] and again["cached"] == "memory", again
            assert again["key"] == d1["key"]
            assert again["result"] == d1["result"]
            say("delta #1 repeated: served from the memory cache, same key")

            # -- 5. failure modes ---------------------------------------
            existing = [[7, int(matrix.colidx[matrix.rowptr[7]]), 1.0]]
            expect_error(
                lambda: client.delta(base_key, inserts=existing),
                400, "DeltaError",
            )
            expect_error(
                lambda: client.delta("0" * 32, inserts=batch1[0]),
                404,
            )
            expect_error(lambda: client.delta(base_key), 400)
            parallel = client.advise(matrix=matrix, num_threads=8, scale=16)
            fb = client.delta(parallel["key"], inserts=batch1[0],
                              deletes=batch1[1])
            assert fb["ok"], fb
            assert fb["delta"]["path"] == "fallback", fb["delta"]
            assert fb["delta"]["reason"] == "threads", fb["delta"]
            assert fb["result"], fb
            say("failure modes: DeltaError 400, unknown base 404, empty "
                "batch 400; parallel base fell back "
                f"(reason={fb['delta']['reason']}) but still answered")

            # -- 6. the delta metric families ---------------------------
            snapshot = client.metrics()["delta"]
            applied = snapshot["applied"].get("advise", {})
            assert applied.get("incremental", 0) >= 2, snapshot
            fallback = snapshot["fallback"].get("advise", {})
            assert fallback.get("threads", 0) >= 1, snapshot
            assert snapshot["drift"]["count"] >= 2, snapshot
            samples = parse_prometheus_text(
                client.metrics(format="prometheus"))
            assert samples["repro_delta_applied_total"]
            assert samples["repro_delta_fallback_total"]
            say(f"metrics: applied={snapshot['applied']} "
                f"fallback={snapshot['fallback']} "
                f"drift count={snapshot['drift']['count']}")

            client.shutdown()
        finally:
            client.close()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)

    if args.selftest:
        print("delta_smoke selftest: OK")
    else:
        print("delta smoke: all assertions passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
