#!/usr/bin/env python3
"""Advisor service tour: daemon, client, coalescing and the cache tiers.

Launches ``python -m repro.service`` as a subprocess on an ephemeral
port, then walks the client through the daemon's behaviour:

1. an ``advise`` call (the class-(2) wide-band matrix) and its verdict,
2. the same call again — served from the memory tier,
3. four *concurrent* duplicate calls on a fresh matrix — the daemon
   performs exactly one model evaluation (in-flight coalescing plus the
   result cache absorb the other three, asserted via ``/metrics``),
4. a ``/metrics`` scrape, and a clean ``/shutdown``.

Run:  python examples/advisor_service.py
CI:   python examples/advisor_service.py --selftest   (quiet, asserts only)
"""

import argparse
import re
import subprocess
import sys
import tempfile
from concurrent.futures import ThreadPoolExecutor

from repro.core.advisor import Recommendation
from repro.matrices import banded
from repro.service import ServiceClient

_ANNOUNCE = re.compile(r"repro-service listening on http://([^:]+):(\d+)")


def launch_daemon(cache_dir: str) -> tuple[subprocess.Popen, ServiceClient]:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--port", "0",
         "--jobs", "2", "--cache", cache_dir],
        stdout=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    match = _ANNOUNCE.search(line)
    if match is None:
        proc.terminate()
        raise RuntimeError(f"daemon did not announce its port: {line!r}")
    client = ServiceClient(match.group(1), int(match.group(2)), timeout=120.0)
    client.wait_ready()
    return proc, client


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet run for CI; exit non-zero on any mismatch")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    with tempfile.TemporaryDirectory(prefix="advisor-service-") as cache_dir:
        proc, client = launch_daemon(cache_dir)
        try:
            say(f"daemon up at http://{client.host}:{client.port} "
                f"(cache: {cache_dir})\n")

            # -- one advise call --------------------------------------
            matrix = banded(26_000, 2_500, 11, seed=3)
            envelope = client.advise(matrix, num_threads=48)
            assert envelope["ok"] and envelope["cached"] is None
            rec = Recommendation.from_dict(envelope["result"])
            say("== advise: class-(2) wide band ==")
            say(rec.summary())

            # -- the memory tier --------------------------------------
            again = client.advise(matrix, num_threads=48)
            assert again["cached"] == "memory"
            assert again["result"] == envelope["result"]
            say("\nsame request again: served from the "
                f"{again['cached']!r} tier")

            # -- coalescing: 4 concurrent duplicates, 1 evaluation ----
            other = banded(1_200, 40, 9, seed=5)
            before = client.metrics()["evaluations"].get("advise", 0)
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(client.advise, other, num_threads=8)
                           for _ in range(4)]
                envelopes = [f.result() for f in futures]
            after = client.metrics()["evaluations"].get("advise", 0)
            assert after - before == 1, (
                f"expected 1 evaluation for 4 duplicates, got {after - before}"
            )
            assert len({e["key"] for e in envelopes}) == 1
            tiers = sorted(str(e["cached"]) for e in envelopes)
            say("\n4 concurrent duplicate requests -> 1 evaluation "
                f"(served as: {', '.join(tiers)})")

            # -- metrics ----------------------------------------------
            metrics = client.metrics()
            assert metrics["requests"]["advise"]["ok"] >= 6
            assert metrics["workers"]["restarts"] == 0
            say("\n== /metrics ==")
            say(f"requests: {metrics['requests']}")
            say(f"evaluations: {metrics['evaluations']}  "
                f"coalesced: {metrics['coalesced']}")
            say(f"memory tier: {metrics['cache']['memory']['hits']} hits, "
                f"{metrics['cache']['memory']['bytes']} bytes held")
            hist = metrics["latency_seconds"]["advise"]
            say(f"advise latency: n={hist['count']}, "
                f"mean={hist['sum_seconds'] / hist['count']:.3f}s")

            # -- clean shutdown ---------------------------------------
            assert client.shutdown()["ok"]
            assert proc.wait(timeout=30) == 0, "daemon exited uncleanly"
            say("\ndaemon shut down cleanly")
        finally:
            if proc.poll() is None:
                proc.terminate()
    if args.selftest:
        print("advisor_service selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
