#!/usr/bin/env python3
"""Cluster smoke: SIGKILL a replica mid-burst, lose nothing.

Launches a consistent-hash gateway in front of real ``python -m
repro.service`` subprocesses (:class:`repro.cluster.ClusterHarness` in
``process`` mode) and drives the failure story end to end:

1. a direct, un-sharded daemon answers the whole collection — the
   byte-identity reference;
2. the same collection streams through the gateway's ``POST /batch``;
   after the first two answers arrive, one replica is SIGKILLed
   mid-burst.  The stream must still deliver **every** answer (the
   gateway ejects the dead replica on the first failed forward and
   walks the failover preference), and every answer must match the
   direct daemon byte for byte;
3. the killed replica restarts on its original port, the probe loop
   readmits it, and a final warm pass serves the whole collection from
   the replicas' caches with zero errors;
4. distributed tracing under failover: the preferred owner of a fresh
   key is SIGKILLed and a traced request routed immediately — the
   gateway must return ONE schema-valid merged tree rooted at
   ``gateway.route``, the dead attempt marked ``failover``, the winning
   forward carrying the replica's evaluation phases, and one
   ``trace_id`` shared by every span across all three processes.

Run:  python examples/cluster_smoke.py
CI:   python examples/cluster_smoke.py --selftest      (quiet, asserts only)
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro.analysis.report import canonical_json
from repro.cluster import ClusterHarness
from repro.matrices.collection import collection
from repro.obs import validate_tree
from repro.obs.context import TraceContext
from repro.service import ServiceClient, ServiceConfig, ServiceThread
from repro.service.protocol import normalize_request, request_key

SETUP = {"num_threads": 8}
MATRICES = 8
KILL_AFTER = 2  # answers consumed before the SIGKILL


def direct_answers(names, cache_dir):
    """name -> (key, canonical result JSON) from one plain daemon."""
    config = ServiceConfig(jobs=1, cache_dir=cache_dir)
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        answers = {}
        for name in names:
            envelope = client.advise(name=name, collection="tiny", **SETUP)
            answers[name] = (envelope["key"],
                            canonical_json(envelope["result"]))
        client.close()
    return answers


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)


def traced_failover(harness, client, attempt):
    """Kill a fresh key's preferred owner, route one traced request.

    Returns the merged tree when the dead replica was still on the ring
    (the trace shows the failover), or None when the background probe
    ejected it first — the caller restarts the victim and retries.
    """
    # a fresh request key: predict with explicit policies is not in any
    # cache yet, so the winning replica must actually evaluate
    payload = {
        "matrix": {"name": collection("tiny")[attempt].name,
                   "collection": "tiny"},
        "setup": SETUP, "policies": [{"l2_sector1_ways": 2 + attempt}],
        "trace": True,
    }
    key = request_key(normalize_request("predict", payload))
    preferred = harness.gateway.membership.preference(key)[0]
    victim = next(r for r in harness.replicas
                  if (r.host, r.port) == (preferred.host, preferred.port))
    harness.kill_replica(victim.index)
    caller = TraceContext.new()
    payload["trace_context"] = caller.to_dict()
    envelope = client.request("POST", "/predict", payload)
    assert envelope["ok"], envelope
    tree = envelope["trace"]
    assert tree is not None and validate_tree(tree) == [], tree
    root, = tree["roots"]
    assert root["name"] == "gateway.route", root["name"]
    assert root["attrs"]["trace_id"] == caller.trace_id
    forwards = [c for c in root["children"] if c["name"] == "gateway.forward"]
    if len(forwards) < 2:
        return None, victim  # probe won the race; retry with a fresh key
    assert forwards[0]["attrs"]["outcome"] == "failover"
    assert forwards[0]["attrs"]["replica"] == preferred.node
    winner = forwards[-1]
    assert winner["attrs"]["outcome"] == "ok"
    names = [node["name"] for node in _walk(winner)]
    for phase in ("service.request", "pool.evaluate", "evaluate"):
        assert phase in names, names
    ids = {node["attrs"]["trace_id"] for node in _walk(root)
           if "trace_id" in node.get("attrs", {})}
    assert ids == {caller.trace_id}, ids
    return tree, victim


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet run for CI; exit non-zero on any mismatch")
    parser.add_argument("--replicas", type=int, default=2,
                        help="replica subprocesses behind the gateway")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    names = [spec.name for spec in collection("tiny")[:MATRICES]]
    items = [{"name": name, "collection": "tiny"} for name in names]

    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        say(f"reference: one un-sharded daemon answers {len(names)} matrices")
        reference = direct_answers(names, str(Path(tmp) / "direct"))

        with ClusterHarness(
            replicas=args.replicas, jobs=1, mode="process",
            cache_root=Path(tmp) / "cluster",
            gateway_config={"probe_interval_seconds": 0.3},
        ) as harness:
            say(f"gateway up at {harness.address[0]}:{harness.address[1]} "
                f"fronting {args.replicas} replica subprocesses "
                f"{[r.node for r in harness.replicas]}\n")
            client = harness.client(timeout=120.0)

            # -- cold burst with a SIGKILL in the middle --------------
            got = []
            for line in client.batch("advise", items, window=4, setup=SETUP):
                got.append(line)
                if len(got) == KILL_AFTER:
                    victim = harness.kill_replica(0)
                    say(f"SIGKILLed replica {victim.node} after "
                        f"{KILL_AFTER} answers")
            *lines, tail = got
            summary = tail["batch"]
            assert summary["total"] == len(names), summary
            assert summary["errors"] == 0, summary
            assert len(lines) == len(names), "lost a request mid-burst"
            for line in lines:
                key, expected = reference[line["name"]]
                assert line["ok"], line
                assert line["key"] == key, line["name"]
                assert canonical_json(line["result"]) == expected, line["name"]
            metrics = client.metrics()
            assert metrics["exhausted"] == 0, metrics
            say(f"burst survived the kill: {summary['ok']}/{summary['total']} "
                f"answers, 0 lost, {metrics['failovers']} failover(s), "
                f"every answer byte-identical to the direct daemon")

            # -- restart, readmission, warm pass ----------------------
            harness.restart_replica(0)
            assert harness.wait_alive(args.replicas, deadline_seconds=20.0), \
                "killed replica was never readmitted"
            say(f"\nreplica restarted on its original port and readmitted "
                f"({client.metrics()['membership']['readmissions']} "
                f"readmission(s))")

            warm = list(client.batch("advise", items, window=4, setup=SETUP))
            assert warm[-1]["batch"]["errors"] == 0
            tiers = {}
            for line in warm[:-1]:
                tier = line.get("cached") or "fresh"
                tiers[tier] = tiers.get(tier, 0) + 1
            say(f"warm pass after recovery: {warm[-1]['batch']['ok']}"
                f"/{len(names)} ok, served from {tiers}")

            # -- traced request surviving a mid-request kill ----------
            for attempt in range(3):
                tree, victim = traced_failover(harness, client, attempt)
                if tree is not None:
                    break
                # the probe loop ejected the victim before the request
                # routed; bring it back and try again with a fresh key
                harness.restart_replica(victim.index)
                assert harness.wait_alive(args.replicas,
                                          deadline_seconds=20.0)
            else:
                raise AssertionError(
                    "probe loop kept winning the kill/request race")
            span_count = sum(1 for root in tree["roots"]
                             for _ in _walk(root))
            say(f"\ntraced failover: one merged gateway.route tree "
                f"({span_count} spans), dead attempt marked, winning "
                f"replica's evaluation phases attached, single trace id "
                f"across gateway + both replica attempts")
            client.close()

    if args.selftest:
        print("cluster_smoke selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
