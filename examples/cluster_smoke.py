#!/usr/bin/env python3
"""Cluster smoke: SIGKILL a replica mid-burst, lose nothing.

Launches a consistent-hash gateway in front of real ``python -m
repro.service`` subprocesses (:class:`repro.cluster.ClusterHarness` in
``process`` mode) and drives the failure story end to end:

1. a direct, un-sharded daemon answers the whole collection — the
   byte-identity reference;
2. the same collection streams through the gateway's ``POST /batch``;
   after the first two answers arrive, one replica is SIGKILLed
   mid-burst.  The stream must still deliver **every** answer (the
   gateway ejects the dead replica on the first failed forward and
   walks the failover preference), and every answer must match the
   direct daemon byte for byte;
3. the killed replica restarts on its original port, the probe loop
   readmits it, and a final warm pass serves the whole collection from
   the replicas' caches with zero errors.

Run:  python examples/cluster_smoke.py
CI:   python examples/cluster_smoke.py --selftest      (quiet, asserts only)
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro.analysis.report import canonical_json
from repro.cluster import ClusterHarness
from repro.matrices.collection import collection
from repro.service import ServiceClient, ServiceConfig, ServiceThread

SETUP = {"num_threads": 8}
MATRICES = 8
KILL_AFTER = 2  # answers consumed before the SIGKILL


def direct_answers(names, cache_dir):
    """name -> (key, canonical result JSON) from one plain daemon."""
    config = ServiceConfig(jobs=1, cache_dir=cache_dir)
    with ServiceThread(config) as (host, port):
        client = ServiceClient(host, port, timeout=120.0)
        answers = {}
        for name in names:
            envelope = client.advise(name=name, collection="tiny", **SETUP)
            answers[name] = (envelope["key"],
                            canonical_json(envelope["result"]))
        client.close()
    return answers


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selftest", action="store_true",
                        help="quiet run for CI; exit non-zero on any mismatch")
    parser.add_argument("--replicas", type=int, default=2,
                        help="replica subprocesses behind the gateway")
    args = parser.parse_args()
    say = (lambda *_: None) if args.selftest else print

    names = [spec.name for spec in collection("tiny")[:MATRICES]]
    items = [{"name": name, "collection": "tiny"} for name in names]

    with tempfile.TemporaryDirectory(prefix="cluster-smoke-") as tmp:
        say(f"reference: one un-sharded daemon answers {len(names)} matrices")
        reference = direct_answers(names, str(Path(tmp) / "direct"))

        with ClusterHarness(
            replicas=args.replicas, jobs=1, mode="process",
            cache_root=Path(tmp) / "cluster",
            gateway_config={"probe_interval_seconds": 0.3},
        ) as harness:
            say(f"gateway up at {harness.address[0]}:{harness.address[1]} "
                f"fronting {args.replicas} replica subprocesses "
                f"{[r.node for r in harness.replicas]}\n")
            client = harness.client(timeout=120.0)

            # -- cold burst with a SIGKILL in the middle --------------
            got = []
            for line in client.batch("advise", items, window=4, setup=SETUP):
                got.append(line)
                if len(got) == KILL_AFTER:
                    victim = harness.kill_replica(0)
                    say(f"SIGKILLed replica {victim.node} after "
                        f"{KILL_AFTER} answers")
            *lines, tail = got
            summary = tail["batch"]
            assert summary["total"] == len(names), summary
            assert summary["errors"] == 0, summary
            assert len(lines) == len(names), "lost a request mid-burst"
            for line in lines:
                key, expected = reference[line["name"]]
                assert line["ok"], line
                assert line["key"] == key, line["name"]
                assert canonical_json(line["result"]) == expected, line["name"]
            metrics = client.metrics()
            assert metrics["exhausted"] == 0, metrics
            say(f"burst survived the kill: {summary['ok']}/{summary['total']} "
                f"answers, 0 lost, {metrics['failovers']} failover(s), "
                f"every answer byte-identical to the direct daemon")

            # -- restart, readmission, warm pass ----------------------
            harness.restart_replica(0)
            assert harness.wait_alive(args.replicas, deadline_seconds=20.0), \
                "killed replica was never readmitted"
            say(f"\nreplica restarted on its original port and readmitted "
                f"({client.metrics()['membership']['readmissions']} "
                f"readmission(s))")

            warm = list(client.batch("advise", items, window=4, setup=SETUP))
            assert warm[-1]["batch"]["errors"] == 0
            tiers = {}
            for line in warm[:-1]:
                tier = line.get("cached") or "fresh"
                tiers[tier] = tiers.get(tier, 0) + 1
            say(f"warm pass after recovery: {warm[-1]['batch']['ok']}"
                f"/{len(names)} ok, served from {tiers}")
            client.close()

    if args.selftest:
        print("cluster_smoke selftest: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
