# Convenience targets for the reproduction.

PY ?= python3

.PHONY: install test bench experiments full-sweep clean

install:
	$(PY) setup.py develop

test:
	$(PY) -m pytest tests/

bench:
	$(PY) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PY) -m repro.experiments --exp all --collection small

full-sweep:
	REPRO_BENCH_COLLECTION=full REPRO_BENCH_LIMIT=0 \
		$(PY) -m pytest benchmarks/ --benchmark-only

clean:
	rm -rf .repro_cache .pytest_cache build *.egg-info
